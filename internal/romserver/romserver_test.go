package romserver

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codecomp"
	"codecomp/internal/blockcache"
)

// testText returns a small synthetic MIPS text plus its generating program
// (for trace replay).
func testText(t testing.TB) (*codecomp.MIPSProgram, []byte) {
	t.Helper()
	prog := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv"))
	return prog, prog.Text()
}

func marshalSAMC(t testing.TB, text []byte) []byte {
	t.Helper()
	img, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	return img.Marshal()
}

func TestAddImageFormatsAndReplace(t *testing.T) {
	_, text := testText(t)
	s := New(Options{})
	defer s.Close()

	sadcImg, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, format string
		data         []byte
	}{
		{"prog-samc", codecomp.FormatSAMC, marshalSAMC(t, text)},
		{"prog-sadc", codecomp.FormatSADC, sadcImg.Marshal()},
		{"prog-huff", codecomp.FormatHuffman, huffImg.Marshal()},
	}
	for _, c := range cases {
		info, err := s.AddImage(c.name, c.data)
		if err != nil {
			t.Fatalf("AddImage(%s): %v", c.name, err)
		}
		if info.Format != c.format || info.Blocks == 0 || info.OrigSize != len(text) {
			t.Fatalf("AddImage(%s) info = %+v", c.name, info)
		}
	}
	if len(s.Images()) != 3 {
		t.Fatalf("Images() = %v", s.Images())
	}

	if _, err := s.AddImage("bad", []byte("not an image")); err == nil {
		t.Fatal("garbage upload accepted")
	}
	if _, err := s.AddImage("bad/name", cases[0].data); err == nil {
		t.Fatal("invalid name accepted")
	}

	// Replacing an image drops its cached blocks.
	if _, _, err := s.Block("prog-samc", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddImage("prog-samc", cases[0].data); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().Entries; got != 0 {
		// Only prog-samc blocks could be cached at this point (modulo its
		// prefetches, which are also invalidated).
		if s.cache.Contains(blockKey(s, "prog-samc", 0)) {
			t.Fatal("replaced image still cached")
		}
		_ = got
	}

	if err := s.RemoveImage("prog-huff"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveImage("prog-huff"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove: %v", err)
	}
}

// blockKey resolves the live registration's cache key for one block.
func blockKey(s *Server, name string, i int) blockcache.Key {
	img, err := s.lookup(name)
	if err != nil {
		return blockcache.Key{Image: name, Block: i}
	}
	return img.key(i)
}

func TestBlockRangeFullText(t *testing.T) {
	_, text := testText(t)
	s := New(Options{CacheBlocks: 64})
	defer s.Close()
	info, err := s.AddImage("prog", marshalSAMC(t, text))
	if err != nil {
		t.Fatal(err)
	}

	for _, i := range []int{0, 1, info.Blocks / 2, info.Blocks - 1} {
		got, _, err := s.Block("prog", i)
		if err != nil {
			t.Fatalf("Block(%d): %v", i, err)
		}
		end := (i + 1) * 32
		if end > len(text) {
			end = len(text)
		}
		if !bytes.Equal(got, text[i*32:end]) {
			t.Fatalf("Block(%d) mismatch", i)
		}
	}

	got, err := s.Range("prog", 2, 5)
	if err != nil || !bytes.Equal(got, text[2*32:6*32]) {
		t.Fatalf("Range(2,5): %v", err)
	}

	full, err := s.FullText("prog")
	if err != nil || !bytes.Equal(full, text) {
		t.Fatalf("FullText: len %d vs %d, err %v", len(full), len(text), err)
	}

	// Error surfaces.
	if _, _, err := s.Block("prog", -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Block(-1): %v", err)
	}
	if _, _, err := s.Block("prog", info.Blocks); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Block(N): %v", err)
	}
	if _, err := s.Range("prog", 5, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Range(5,2): %v", err)
	}
	if _, _, err := s.Block("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Block(nope): %v", err)
	}
}

// stubCodec counts Block calls and can stall them on a gate, to observe the
// singleflight path deterministically.
type stubCodec struct {
	blocks int
	gate   chan struct{}
	calls  atomic.Int64
}

func (c *stubCodec) NumBlocks() int { return c.blocks }
func (c *stubCodec) Block(i int) ([]byte, error) {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return []byte{byte(i), byte(i >> 8)}, nil
}
func (c *stubCodec) Decompress() ([]byte, error) {
	var out []byte
	for i := 0; i < c.blocks; i++ {
		b, _ := c.Block(i)
		out = append(out, b...)
	}
	return out, nil
}
func (c *stubCodec) CompressedSize() int { return c.blocks }
func (c *stubCodec) Ratio() float64      { return 0.5 }

// TestSingleflightCollapse is the acceptance-criteria assertion: concurrent
// demand misses on the same block must trigger exactly one decompression —
// not one per caller.
func TestSingleflightCollapse(t *testing.T) {
	const waiters = 16
	stub := &stubCodec{blocks: 4, gate: make(chan struct{})}
	s := New(Options{Workers: waiters, QueueDepth: 2 * waiters, PrefetchDepth: -1})
	defer s.Close()
	s.addCodec("stub", stub, "stub")

	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			data, _, err := s.Block("stub", 0)
			if err != nil || !bytes.Equal(data, []byte{0, 0}) {
				t.Errorf("Block = %v, %v", data, err)
			}
		}()
	}

	// Wait until one loader is stalled on the gate and all other callers
	// have joined its flight, then release it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.CacheStats()
		if st.Misses == 1 && st.Deduped == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights never converged: %+v", st)
		}
		runtime.Gosched()
	}
	close(stub.gate)
	wg.Wait()

	if n := stub.calls.Load(); n != 1 {
		t.Fatalf("%d decompressions for %d concurrent misses, want 1", n, waiters)
	}
	st := s.Stats()
	if st.Cache.Misses != 1 || st.Cache.Deduped != waiters-1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if len(st.Images) != 1 || st.Images[0].Decompressions != 1 || st.Images[0].BlockReads != waiters {
		t.Fatalf("image stats = %+v", st.Images)
	}
}

// TestLoopingTraceHitRatio replays a memsys-style synthetic fetch trace
// (collapsed to block-change granularity, like a refill engine behind a
// one-line buffer) and checks the serving cache exploits its locality.
func TestLoopingTraceHitRatio(t *testing.T) {
	prog, text := testText(t)
	s := New(Options{CacheBlocks: 8192, PrefetchDepth: 4})
	defer s.Close()
	info, err := s.AddImage("prog", marshalSAMC(t, text))
	if err != nil {
		t.Fatal(err)
	}

	trace := prog.Trace(42, 30000)
	last := -1
	requests := 0
	for _, addr := range trace {
		b := int(addr-codecomp.TextBase) / 32
		if b == last {
			continue
		}
		last = b
		if b >= info.Blocks {
			continue
		}
		if _, _, err := s.Block("prog", b); err != nil {
			t.Fatalf("Block(%d): %v", b, err)
		}
		requests++
	}

	st := s.Stats()
	ratio := st.Cache.HitRatio()
	t.Logf("%d block requests, cache %+v, ratio %.4f, prefetch %+v, decompressions %d",
		requests, st.Cache, ratio, st.Prefetch, st.Images[0].Decompressions)
	if ratio < 0.9 {
		t.Fatalf("looping-trace hit ratio = %.4f, want > 0.9", ratio)
	}
	// Every block decompresses at most once: the cache never thrashed.
	if st.Images[0].Decompressions > int64(info.Blocks) {
		t.Fatalf("%d decompressions for %d blocks", st.Images[0].Decompressions, info.Blocks)
	}
	if st.Prefetch.Issued == 0 || st.Prefetch.Completed == 0 {
		t.Fatalf("prefetcher idle: %+v", st.Prefetch)
	}
}

func TestPrefetchWarmsSequentialBlocks(t *testing.T) {
	_, text := testText(t)
	s := New(Options{PrefetchDepth: 4})
	defer s.Close()
	if _, err := s.AddImage("prog", marshalSAMC(t, text)); err != nil {
		t.Fatal(err)
	}

	if _, hit, err := s.Block("prog", 0); err != nil || hit {
		t.Fatalf("cold read: hit=%v err=%v", hit, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		warm := 0
		for b := 1; b <= 4; b++ {
			if s.cache.Contains(blockKey(s, "prog", b)) {
				warm++
			}
		}
		if warm == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/4 blocks prefetched", warm)
		}
		time.Sleep(time.Millisecond)
	}
	// A demand read of a prefetched block is a pure cache hit.
	if _, hit, err := s.Block("prog", 1); err != nil || !hit {
		t.Fatalf("prefetched read: hit=%v err=%v", hit, err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	_, text := testText(t)
	s := New(Options{Workers: 4})
	info, err := s.AddImage("prog", marshalSAMC(t, text))
	if err != nil {
		t.Fatal(err)
	}

	// Reads racing Close either complete correctly or report ErrClosed —
	// never hang, never return wrong bytes.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := (g*37 + i) % info.Blocks
				data, _, err := s.Block("prog", b)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("Block(%d): %v", b, err)
					return
				}
				if len(data) == 0 {
					t.Errorf("Block(%d): empty", b)
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if _, _, err := s.Block("prog", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Block after Close: %v", err)
	}
	if _, err := s.AddImage("another", marshalSAMC(t, text)); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddImage after Close: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestConcurrentMixedImages hammers every format from many goroutines and
// verifies bytes; with -race this is the serving layer's thread-safety
// proof on top of the codecs' own.
func TestConcurrentMixedImages(t *testing.T) {
	_, text := testText(t)
	s := New(Options{CacheBlocks: 256, Workers: 8})
	defer s.Close()

	sadcImg, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"samc": marshalSAMC(t, text),
		"sadc": sadcImg.Marshal(),
		"huff": huffImg.Marshal(),
	} {
		if _, err := s.AddImage(name, data); err != nil {
			t.Fatalf("AddImage(%s): %v", name, err)
		}
	}
	names := []string{"samc", "sadc", "huff"}
	blocks := len(text) / 32

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				name := names[rng.Intn(len(names))]
				b := rng.Intn(blocks)
				data, _, err := s.Block(name, b)
				if err != nil {
					t.Errorf("Block(%s,%d): %v", name, b, err)
					return
				}
				if !bytes.Equal(data, text[b*32:(b+1)*32]) {
					t.Errorf("Block(%s,%d): wrong bytes", name, b)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()

	st := s.Stats()
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("implausible cache stats: %+v", st.Cache)
	}
}

func TestTraceRecordingAndTrain(t *testing.T) {
	stub := &stubCodec{blocks: 16}
	s := New(Options{PrefetchDepth: -1, TraceBuffer: 8})
	defer s.Close()
	s.addCodec("stub", stub, "stub")

	// Nothing recorded yet: Train refuses, Profile refuses.
	if _, err := s.Train("stub"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("Train on empty ring: %v", err)
	}
	if _, err := s.Profile("stub"); !errors.Is(err, ErrNoProfile) {
		t.Fatalf("Profile before training: %v", err)
	}

	for _, b := range []int{0, 9, 0, 9, 0, 3} {
		if _, _, err := s.Block("stub", b); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := s.TraceSnapshot("stub")
	if err != nil || tr.Blocks != 16 || len(tr.Accesses) != 6 {
		t.Fatalf("TraceSnapshot = %+v, %v", tr, err)
	}
	prof, err := s.Train("stub")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Heat[0] != 3 || prof.Heat[9] != 2 || prof.Next[0][9] != 2 {
		t.Fatalf("trained profile = heat %v next %v", prof.Heat, prof.Next)
	}
	if got, err := s.Profile("stub"); err != nil || got != prof {
		t.Fatalf("Profile = %v, %v", got, err)
	}

	// The ring is bounded: hammering one block keeps only the window.
	for i := 0; i < 100; i++ {
		s.Block("stub", 1)
	}
	tr, _ = s.TraceSnapshot("stub")
	if len(tr.Accesses) != 8 {
		t.Fatalf("ring grew past its bound: %d", len(tr.Accesses))
	}

	// Unknown images error on every tracelab call.
	if _, err := s.Train("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := s.SetPolicy("nope", PolicySpec{Policy: "sequential"}); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
}

func TestSetPolicyMarkovPrefetchesTrainedSuccessor(t *testing.T) {
	stub := &stubCodec{blocks: 64}
	s := New(Options{PrefetchDepth: 2, TraceBuffer: 1024})
	defer s.Close()
	s.addCodec("stub", stub, "stub")

	// Markov before training is refused.
	if _, err := s.SetPolicy("stub", PolicySpec{Policy: "markov"}); !errors.Is(err, ErrNoProfile) {
		t.Fatalf("untrained markov: %v", err)
	}
	if _, err := s.SetPolicy("stub", PolicySpec{Policy: "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}

	// The trace jumps 10 -> 40 every time; train, then switch to markov.
	if _, err := s.TrainFrom("stub", []int{10, 40, 10, 40, 10, 40}); err != nil {
		t.Fatal(err)
	}
	info, err := s.SetPolicy("stub", PolicySpec{Policy: "markov", TopK: 1, Depth: 1})
	if err != nil || info.Policy != "markov" {
		t.Fatalf("SetPolicy = %+v, %v", info, err)
	}
	if pi, err := s.Policy("stub"); err != nil || pi.Policy != "markov" {
		t.Fatalf("Policy = %+v, %v", pi, err)
	}

	// A demand miss on 10 must warm 40 — the trained successor — and not
	// 11, the sequential guess.
	if _, _, err := s.Block("stub", 10); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s.cache.Contains(blockKey(s, "stub", 40)) {
		if time.Now().After(deadline) {
			t.Fatal("trained successor never prefetched")
		}
		time.Sleep(time.Millisecond)
	}
	if s.cache.Contains(blockKey(s, "stub", 11)) {
		t.Fatal("markov policy still prefetching sequentially")
	}
	// The warmed read is a demand hit and counts as a prefetch hit.
	if _, hit, err := s.Block("stub", 40); err != nil || !hit {
		t.Fatalf("warmed read: hit=%v err=%v", hit, err)
	}
	st := s.Stats()
	if st.Prefetch.Hits != 1 || st.Prefetch.Completed != 1 {
		t.Fatalf("prefetch stats = %+v", st.Prefetch)
	}
	if st.Prefetch.Accuracy() != 1 {
		t.Fatalf("accuracy = %v", st.Prefetch.Accuracy())
	}
	if len(st.Images) != 1 || st.Images[0].Policy != "markov" || !st.Images[0].Trained {
		t.Fatalf("image stats = %+v", st.Images[0])
	}
}

func TestPrefetchHitAccountingSequential(t *testing.T) {
	stub := &stubCodec{blocks: 16}
	s := New(Options{PrefetchDepth: 4})
	defer s.Close()
	s.addCodec("stub", stub, "stub")

	if _, _, err := s.Block("stub", 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Prefetch.Completed < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetches never completed: %+v", s.Stats().Prefetch)
		}
		time.Sleep(time.Millisecond)
	}
	// Two demand reads of warmed blocks, one re-read: prefetch hits count
	// first use only, ordinary hits keep counting.
	s.Block("stub", 1)
	s.Block("stub", 2)
	s.Block("stub", 1)
	st := s.Stats()
	if st.Prefetch.Hits != 2 {
		t.Fatalf("prefetch hits = %d, want 2 (stats %+v)", st.Prefetch.Hits, st.Prefetch)
	}
	if st.Cache.Hits != 3 {
		t.Fatalf("cache hits = %d, want 3", st.Cache.Hits)
	}
}

func TestSetPolicyHotsetPinsSurviveColdScan(t *testing.T) {
	stub := &stubCodec{blocks: 256}
	// Cache far below the image size so a cold scan evicts everything
	// unpinned.
	s := New(Options{CacheBlocks: 16, CacheShards: 1, PrefetchDepth: -1, TraceBuffer: 4096})
	defer s.Close()
	s.addCodec("stub", stub, "stub")

	// Blocks 7 and 200 are hot.
	trace := make([]int, 0, 64)
	for i := 0; i < 16; i++ {
		trace = append(trace, 7, 200)
	}
	if _, err := s.TrainFrom("stub", trace); err != nil {
		t.Fatal(err)
	}
	info, err := s.SetPolicy("stub", PolicySpec{Policy: "hotset", PinCount: 2})
	if err != nil || info.Pinned != 2 {
		t.Fatalf("SetPolicy = %+v, %v", info, err)
	}

	// Full cold scan of the whole image.
	for b := 0; b < stub.blocks; b++ {
		if _, _, err := s.Block("stub", b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range []int{7, 200} {
		if !s.cache.Contains(blockKey(s, "stub", b)) {
			t.Fatalf("pinned hot block %d evicted by cold scan", b)
		}
	}
	if st := s.CacheStats(); st.Pinned != 2 {
		t.Fatalf("pinned = %d", st.Pinned)
	}

	// Switching back to sequential releases the pins; a fresh cold scan
	// now evicts the previously hot blocks.
	if _, err := s.SetPolicy("stub", PolicySpec{Policy: "sequential"}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Pinned != 0 {
		t.Fatalf("pins survived policy switch: %+v", st)
	}
	for b := 0; b < stub.blocks; b++ {
		s.Block("stub", b)
	}
	if s.cache.Contains(blockKey(s, "stub", 7)) {
		t.Fatal("unpinned block survived a full cold scan")
	}

	// RemoveImage drops pinned state cleanly too.
	s.TrainFrom("stub", trace)
	s.SetPolicy("stub", PolicySpec{Policy: "hotset", PinCount: 2})
	if err := s.RemoveImage("stub"); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Pinned != 0 || st.Entries != 0 {
		t.Fatalf("stale cache after remove: %+v", st)
	}
}

// BenchmarkRomserverMiss measures the full demand-miss path end to end —
// fetch through the worker pool, hardened load, fast-path decode, sidecar
// verify, cache insert and evict — with prefetch, tracing, the load
// deadline and background re-verification disabled. The budget is one
// allocation per miss: the exact-size copy that goes into the cache.
func BenchmarkRomserverMiss(b *testing.B) {
	_, text := testText(b)
	s := New(Options{
		CacheBlocks:      8,
		CacheShards:      1,
		Workers:          1,
		PrefetchDepth:    -1,
		TraceBuffer:      -1,
		LoadTimeout:      -1,
		ReverifyInterval: -1,
	})
	defer s.Close()
	info, err := s.AddImage("prog", marshalSAMC(b, text))
	if err != nil {
		b.Fatal(err)
	}
	if info.Blocks <= 16 {
		b.Fatalf("image too small to defeat the cache: %d blocks", info.Blocks)
	}
	// Warm the decode pools and the cache's entry freelist.
	for i := 0; i < info.Blocks; i++ {
		if _, _, err := s.Block("prog", i); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(info.OrigSize / info.Blocks))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Sequential rotation over far more blocks than the cache holds:
		// every access is a genuine miss plus an eviction.
		_, hit, err := s.Block("prog", i%info.Blocks)
		if err != nil {
			b.Fatal(err)
		}
		if hit {
			b.Fatal("expected a cache miss")
		}
	}
}
