package romserver

import (
	"runtime"
	"testing"
	"time"

	"codecomp/internal/faultinj"
)

// TestCloseStopsAllGoroutines is the regression test for the graceful-
// drain fix: repeatedly boot a server with a fast reverifier, make an
// image sick enough that reverify passes are actually running loads,
// and assert Close both returns promptly and leaves no goroutines
// behind. Before the fix the reverifier could sit inside a multi-second
// retry ladder after Close was called, so shutdown leaked or stalled.
func TestCloseStopsAllGoroutines(t *testing.T) {
	_, text := testText(t)
	payload := marshalSAMC(t, text)
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 5; iter++ {
		s := New(Options{ReverifyInterval: time.Millisecond, Workers: 2})
		if _, err := s.AddImage("prog", payload); err != nil {
			t.Fatal(err)
		}
		// Every load fails permanently: the image degrades, the bad list
		// grows, and each reverify pass has real work queued.
		if err := s.SetFaults("prog", &faultinj.Options{ErrorBlocks: []int{0, 1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			s.Block("prog", i) //nolint:errcheck — failures are the point
		}
		// Let at least one reverify tick start before shutting down.
		time.Sleep(5 * time.Millisecond)

		done := make(chan struct{})
		go func() {
			s.Close() //nolint:errcheck
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Close did not return within 5s — reverifier not honoring shutdown", iter)
		}
	}

	// Goroutine counts are noisy (runtime helpers, test harness), so poll
	// for return-to-baseline instead of asserting an instant exact match.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across Close: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
