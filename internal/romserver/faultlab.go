// faultlab: the fault-tolerance layer of the serving stack. The whole
// premise of executing out of compressed ROM is that one flipped bit in
// the stored image silently corrupts every byte the decoder emits after
// it — and a serving cache would then fan the corruption out to every
// client. This file makes the decompression path a managed, failure-aware
// runtime service instead of a trusted library call:
//
//   - an integrity sidecar (per-block CRC32-C + length, computed once at
//     registration) verifies every decompressed block BEFORE it can enter
//     the block cache — corruption is detected, counted and surfaced as
//     ErrCorruptBlock, never served or cached;
//   - the hardened load path recovers codec panics into errors, bounds
//     each decompression attempt with a deadline, and retries transient
//     failures (and integrity failures, which a re-decompression often
//     clears) with bounded, jittered exponential backoff;
//   - a per-image health state machine (healthy → degraded → quarantined)
//     driven by a sliding window of load outcomes plus a bad-block list,
//     with a periodic background re-verify pass that walks bad blocks and
//     brings recovered images back to healthy;
//   - SetFaults wraps an image's codec in internal/faultinj at runtime,
//     so chaos tests (loadgen -chaos) exercise all of the above end to
//     end against a live daemon.
package romserver

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"
	"time"

	"codecomp"
	"codecomp/internal/faultinj"
	"codecomp/internal/obsv"
)

// Health state thresholds: an image degrades when its sliding-window
// failure rate crosses degradedRate (or any block is on the bad list) and
// quarantines at quarantineRate; escalation needs at least minHealthObs
// observations so one early blip cannot quarantine a fresh image.
const (
	degradedRate   = 0.10
	quarantineRate = 0.50
	minHealthObs   = 16
	// reverifyBatch bounds how many blocks one background re-verify pass
	// checks per unhealthy image.
	reverifyBatch = 8
)

// castagnoli is the sidecar CRC table (Castagnoli rather than IEEE so a
// sidecar checksum is never confused with the marshaled image checksum,
// and because it is hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// HealthState is one image's position in the health state machine.
type HealthState int32

const (
	// Healthy: serving normally.
	Healthy HealthState = iota
	// Degraded: error/corruption rate over the window crossed
	// degradedRate, or blocks are on the bad list; still serving, under
	// observation and background re-verification.
	Degraded
	// Quarantined: failure rate crossed quarantineRate. Cached blocks are
	// still served (they were verified on the way in) but new
	// decompressions are refused with ErrQuarantined until background
	// re-verification walks the image back to health.
	Quarantined
)

func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	}
	return fmt.Sprintf("HealthState(%d)", int32(h))
}

// sidecar is an image's integrity ground truth: one CRC32-C and expected
// length per decompressed block, computed from the freshly unmarshaled
// codec at registration. Immutable after construction.
type sidecar struct {
	crcs []uint32
	lens []int32
}

// buildSidecar decompresses every block once and records its checksum and
// length. A codec that errors or panics here is rejected at registration
// rather than discovered in a worker.
func buildSidecar(c codecomp.BlockCodec) (sc *sidecar, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc, err = nil, fmt.Errorf("codec panicked during verification: %v", r)
		}
	}()
	n := c.NumBlocks()
	sc = &sidecar{crcs: make([]uint32, n), lens: make([]int32, n)}
	for i := 0; i < n; i++ {
		blk, err := c.Block(i)
		if err != nil {
			return nil, fmt.Errorf("block %d failed to decompress: %w", i, err)
		}
		sc.crcs[i] = crc32.Checksum(blk, castagnoli)
		sc.lens[i] = int32(len(blk))
	}
	return sc, nil
}

// blockOffsets folds the sidecar's per-block lengths into the
// cumulative offset table ReadAt maps byte offsets through — the
// registration pass already decoded every block, so the table is free.
func (sc *sidecar) blockOffsets() []int64 {
	offs := make([]int64, len(sc.lens)+1)
	for i, n := range sc.lens {
		offs[i+1] = offs[i] + int64(n)
	}
	return offs
}

// verify checks one decompressed block against the sidecar. A nil sidecar
// (test codecs registered via addCodec) verifies nothing.
func (sc *sidecar) verify(block int, data []byte) error {
	if sc == nil {
		return nil
	}
	if len(data) != int(sc.lens[block]) {
		return fmt.Errorf("%w: block %d decompressed to %d bytes, registered as %d",
			ErrCorruptBlock, block, len(data), sc.lens[block])
	}
	if got := crc32.Checksum(data, castagnoli); got != sc.crcs[block] {
		return fmt.Errorf("%w: block %d checksum %08x, registered as %08x",
			ErrCorruptBlock, block, got, sc.crcs[block])
	}
	return nil
}

// imageHealth is one image's sliding window of load outcomes, bad-block
// list and current state. All fields are guarded by mu; reads of the
// current state go through State() which takes the lock briefly.
type imageHealth struct {
	mu sync.Mutex
	// window is a ring of final load outcomes (true = failed).
	window []bool
	idx    int
	filled int
	fails  int
	state  HealthState
	// bad holds blocks whose most recent load failed after all retries;
	// membership alone keeps the image at least Degraded until a
	// successful load or re-verify clears it.
	bad         map[int]struct{}
	transitions int64
}

func newImageHealth(window int) *imageHealth {
	return &imageHealth{window: make([]bool, window), bad: make(map[int]struct{})}
}

// State returns the current health state.
func (h *imageHealth) State() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// snapshot returns state, bad-block count, window failure rate and
// transition count in one lock acquisition.
func (h *imageHealth) snapshot() (HealthState, int, float64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rate := 0.0
	if h.filled > 0 {
		rate = float64(h.fails) / float64(h.filled)
	}
	return h.state, len(h.bad), rate, h.transitions
}

// record pushes one final load outcome (after all retries) into the
// window, updates the bad-block list and recomputes the state. It returns
// the (from, to) pair when the state changed.
func (h *imageHealth) record(block int, failed bool) (from, to HealthState, changed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled == len(h.window) {
		if h.window[h.idx] {
			h.fails--
		}
	} else {
		h.filled++
	}
	h.window[h.idx] = failed
	if failed {
		h.fails++
		h.bad[block] = struct{}{}
	} else {
		delete(h.bad, block)
	}
	h.idx = (h.idx + 1) % len(h.window)
	return h.recompute()
}

// recompute applies the thresholds. Caller holds mu.
func (h *imageHealth) recompute() (from, to HealthState, changed bool) {
	rate := 0.0
	if h.filled > 0 {
		rate = float64(h.fails) / float64(h.filled)
	}
	next := Healthy
	switch {
	case h.filled >= minHealthObs && rate >= quarantineRate:
		next = Quarantined
	case (h.filled >= minHealthObs && rate >= degradedRate) || len(h.bad) > 0:
		next = Degraded
	}
	if next == h.state {
		return h.state, next, false
	}
	from, h.state = h.state, next
	h.transitions++
	return from, next, true
}

// reverifyTargets picks up to n blocks for a background re-verify pass:
// every bad block first, then a spread of ordinary blocks so repeated
// passes push fresh outcomes into the window and walk a recovered image's
// failure rate back under the thresholds.
func (h *imageHealth) reverifyTargets(n, blocks int) []int {
	h.mu.Lock()
	targets := make([]int, 0, n)
	for b := range h.bad {
		if len(targets) == n {
			break
		}
		targets = append(targets, b)
	}
	h.mu.Unlock()
	for i := 0; len(targets) < n && i < n && blocks > 0; i++ {
		targets = append(targets, (i*blocks)/n)
	}
	return targets
}

// retryable reports whether a load error is worth another attempt:
// anything that self-describes as temporary (net.Error-style Temporary(),
// which faultinj's transient errors implement) and decompression
// deadlines. Codec panics and plain errors are permanent — a
// deterministic decoder will fail the same way again.
func retryable(err error) bool {
	if errors.Is(err, ErrDecompressTimeout) {
		return true
	}
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// activeCodec returns the fault injector when one is installed, else the
// real codec.
func (img *image) activeCodec() codecomp.BlockCodec {
	if f := img.faults.Load(); f != nil {
		return f
	}
	return img.codec
}

// blockScratch recycles decode buffers across safeBlock calls. The codec
// appends into pooled scratch and only the exact-size copy handed to the
// cache is freshly allocated, so one cache miss costs one allocation.
var blockScratch = sync.Pool{New: func() any { return new([]byte) }}

// safeBlock is one raw decompression with panic containment: a panicking
// codec becomes an ErrCodecPanic error instead of killing a pool worker.
// It decodes through codecomp.AppendBlock into pooled scratch and times
// the decode for the ns/block and MB/s gauges.
func (s *Server) safeBlock(img *image, block int) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			img.panicsRecovered.Add(1)
			s.met.codecPanics.Inc()
			err = fmt.Errorf("%w: block %d of %q: %v", ErrCodecPanic, block, img.name, r)
		}
	}()
	img.decompressions.Add(1)
	s.met.decompressions.Inc()
	bp := blockScratch.Get().(*[]byte)
	defer blockScratch.Put(bp)
	start := time.Now()
	buf, err := codecomp.AppendBlock(img.activeCodec(), (*bp)[:0], block)
	if err != nil {
		return nil, err
	}
	img.decompressNanos.Add(time.Since(start).Nanoseconds())
	img.decompressedBytes.Add(int64(len(buf)))
	*bp = buf
	out := make([]byte, len(buf))
	copy(out, buf)
	return out, nil
}

// loadOnce is one bounded decompression attempt under the given
// deadline (non-positive disables it). When a deadline applies the
// codec runs on its own goroutine so a wedged decoder costs one
// abandoned goroutine, not a pool worker.
func (s *Server) loadOnce(img *image, block int, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		return s.safeBlock(img, block)
	}
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		data, err := s.safeBlock(img, block)
		ch <- res{data, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.data, r.err
	case <-timer.C:
		img.timeouts.Add(1)
		s.met.decodeTimeouts.Inc()
		return nil, fmt.Errorf("%w: block %d of %q after %v",
			ErrDecompressTimeout, block, img.name, timeout)
	}
}

// effectiveTimeout clamps the configured per-attempt decode deadline by
// the request context's remaining time, so a propagated client deadline
// bounds the decompression it pays for. expired=true means the context
// is already done and no attempt should start.
func (s *Server) effectiveTimeout(ctx context.Context) (timeout time.Duration, expired bool) {
	timeout = s.opts.LoadTimeout
	if ctx == nil {
		return timeout, false
	}
	if err := ctx.Err(); err != nil {
		return 0, true
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem <= 0 {
			return 0, true
		} else if timeout <= 0 || rem < timeout {
			timeout = rem
		}
	}
	return timeout, false
}

// loadVerified is the hardened load path every decompression goes
// through (demand, prefetch, pinning and re-verify alike): bounded
// attempts with jittered exponential backoff, integrity verification
// against the sidecar before the bytes can reach the cache, and health
// accounting of the final outcome. Each phase lands in its latency
// histogram, and a sampled demand load carries sp (nil otherwise) to
// record the same phases plus retry/corruption events into the trace.
//
// When allowFill is true and a fill hook is installed (peer cache-fill),
// the hook is consulted first: verified fill bytes are returned without
// touching the local codec, a fill that fails verification is counted
// and discarded, and the load falls through to local decompression. The
// background re-verifier passes allowFill=false — its whole point is to
// prove the *local* image decompresses cleanly.
//
// ctx, when non-nil, is the demand caller's request context: its
// deadline clamps each attempt's decode deadline, an expired context
// stops the attempt loop, and — when the overload layer is on — each
// retry must additionally be granted by the token budget, so a fault
// burst cannot amplify into a retry storm. Background callers
// (re-verify, pinning, range decodes) pass nil and keep the old
// unbudgeted behavior.
func (s *Server) loadVerified(ctx context.Context, img *image, block int, sp *obsv.Span, allowFill bool) ([]byte, error) {
	loadStart := time.Now()
	defer func() { s.met.blockLoad.Observe(time.Since(loadStart)) }()
	if allowFill {
		if fp := s.fill.Load(); fp != nil {
			if data, ok := (*fp)(img.name, block); ok {
				if verr := img.sidecar.verify(block, data); verr == nil {
					s.met.peerFills.Inc()
					if sp != nil {
						sp.Event("peer fill")
					}
					s.recordHealth(img, block, false)
					return data, nil
				}
				s.met.peerFillRejects.Inc()
				if sp != nil {
					sp.Event("peer fill rejected by sidecar")
				}
			}
		}
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var lastErr error
	backoff := s.opts.RetryBackoff
	for attempt := 0; attempt < s.opts.LoadAttempts; attempt++ {
		if attempt > 0 {
			// A caller that already gave up gets its context error, not a
			// retried load it will never read.
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			// Demand retries spend the token budget; a drained budget
			// fails the load with the last error instead of amplifying.
			if ctx != nil && !s.retryAllowed() {
				if sp != nil {
					sp.Eventf("retry %d denied by budget: %v", attempt, lastErr)
				}
				break
			}
			img.retries.Add(1)
			s.met.retries.Inc()
			// Full jitter on an exponential base, capped at quit.
			d := backoff + time.Duration(rand.Int63n(int64(backoff)+1))
			if sp != nil {
				sp.Eventf("retry %d after %v: %v", attempt, d, lastErr)
			}
			select {
			case <-time.After(d):
			case <-done:
				return nil, ctx.Err()
			case <-s.quit:
				return nil, ErrClosed
			}
			backoff *= 2
		}
		timeout, expired := s.effectiveTimeout(ctx)
		if expired {
			return nil, ctx.Err()
		}
		decodeStart := time.Now()
		data, err := s.loadOnce(img, block, timeout)
		decodeDur := time.Since(decodeStart)
		s.met.decode.Observe(decodeDur)
		sp.Phase("decode", decodeDur)
		if err == nil {
			verifyStart := time.Now()
			verr := img.sidecar.verify(block, data)
			verifyDur := time.Since(verifyStart)
			s.met.verify.Observe(verifyDur)
			sp.Phase("verify", verifyDur)
			if verr != nil {
				// Detected corruption: count it, never serve or cache it.
				// Retry — decompression is deterministic but the fault
				// (RAM bit rot, injected flip) often is not.
				img.corruptBlocks.Add(1)
				s.met.corruptBlocks.Inc()
				if sp != nil {
					sp.Eventf("corruption detected: %v", verr)
				}
				lastErr = verr
				continue
			}
			s.recordHealth(img, block, false)
			return data, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	img.loadFailures.Add(1)
	s.met.loadFailures.Inc()
	s.recordHealth(img, block, true)
	return nil, lastErr
}

// recordHealth pushes a final load outcome into the image's health window
// and counts state transitions.
func (s *Server) recordHealth(img *image, block int, failed bool) {
	if _, _, changed := img.health.record(block, failed); changed {
		s.met.healthTransitions.Inc()
	}
}

// reverifier is the background recovery loop: every interval it walks
// each unhealthy image's bad blocks (plus a spread of ordinary blocks)
// through the hardened load path. Successes clear bad-list entries and
// dilute the failure window, so an image whose faults have stopped steps
// back down to healthy; persistent failures keep it where it is.
func (s *Server) reverifier(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.reverifyPass()
		case <-s.quit:
			return
		}
	}
}

// reverifyPass re-verifies every unhealthy image once.
func (s *Server) reverifyPass() {
	s.mu.RLock()
	imgs := make([]*image, 0, len(s.images))
	for _, img := range s.images {
		imgs = append(imgs, img)
	}
	s.mu.RUnlock()
	for _, img := range imgs {
		if img.health.State() == Healthy {
			continue
		}
		for _, b := range img.health.reverifyTargets(reverifyBatch, img.blocks) {
			if b < 0 || b >= img.blocks {
				continue
			}
			// Check for shutdown BEFORE committing to a load: a re-verify
			// load can spend attempts × (deadline + backoff) on a sick
			// image, and Close waits for this goroutine. Checking first
			// bounds the shutdown wait to at most one in-flight load.
			select {
			case <-s.quit:
				return
			default:
			}
			img.reverifies.Add(1)
			s.met.reverifies.Inc()
			s.loadVerified(nil, img, b, nil, false) //nolint:errcheck — outcome lands in health accounting
		}
	}
}

// SetFaults installs a fault injector between the serving stack and the
// image's codec (chaos testing: see cmd/loadgen -chaos). A nil spec
// removes the injector. The integrity sidecar was computed from the clean
// codec at registration and is deliberately left untouched, so injected
// corruption is detected exactly like real corruption would be.
func (s *Server) SetFaults(name string, opts *faultinj.Options) error {
	img, err := s.lookup(name)
	if err != nil {
		return err
	}
	if opts == nil {
		img.faults.Store(nil)
		return nil
	}
	// Mirror injected faults into the metrics registry, chaining any hook
	// the caller supplied.
	o := *opts
	userHook := o.Hook
	o.Hook = func(k faultinj.Kind) {
		s.met.countFault(k)
		if userHook != nil {
			userHook(k)
		}
	}
	img.faults.Store(faultinj.New(img.codec, o))
	return nil
}

// FaultStats returns the image's injected-fault counters, or nil when no
// injector is installed.
func (s *Server) FaultStats(name string) (*faultinj.Stats, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if f := img.faults.Load(); f != nil {
		st := f.Stats()
		return &st, nil
	}
	return nil, nil
}

// HealthTracker is the image health state machine exposed for reuse by
// other subsystems that need the same sliding-window escalation —
// internal/cluster drives one per node to decide ring ejection, so a
// node and an image degrade and recover by exactly the same rules
// (healthy → degraded on sustained failures or any unresolved failure,
// quarantined at a 50% window failure rate, walked back by successes).
type HealthTracker struct {
	h *imageHealth
}

// NewHealthTracker returns a tracker over a sliding window of the given
// size (the Options.HealthWindow default when size <= 0).
func NewHealthTracker(size int) *HealthTracker {
	if size <= 0 {
		size = Options{}.withDefaults().HealthWindow
	}
	return &HealthTracker{h: newImageHealth(size)}
}

// Record pushes one outcome into the window and reports whether the
// state changed, and to what.
func (t *HealthTracker) Record(failed bool) (to HealthState, changed bool) {
	_, to, changed = t.h.record(0, failed)
	return to, changed
}

// State returns the current health state.
func (t *HealthTracker) State() HealthState { return t.h.State() }

// FailureRate returns the failing fraction of the observed window.
func (t *HealthTracker) FailureRate() float64 {
	_, _, rate, _ := t.h.snapshot()
	return rate
}

// HealthInfo is one image's health for /healthz-style reporting.
type HealthInfo struct {
	Image string `json:"image"`
	// State is "healthy", "degraded" or "quarantined".
	State string `json:"state"`
	// BadBlocks is how many blocks are currently on the bad list.
	BadBlocks int `json:"bad_blocks"`
	// FailureRate is the failure fraction of the sliding outcome window.
	FailureRate float64 `json:"failure_rate"`
}

// Health reports readiness: ready is false while any image is
// quarantined. The per-image breakdown is sorted by name.
func (s *Server) Health() (ready bool, infos []HealthInfo) {
	s.mu.RLock()
	imgs := make([]*image, 0, len(s.images))
	for _, img := range s.images {
		imgs = append(imgs, img)
	}
	s.mu.RUnlock()
	ready = true
	for _, img := range imgs {
		state, bad, rate, _ := img.health.snapshot()
		if state == Quarantined {
			ready = false
		}
		infos = append(infos, HealthInfo{
			Image:       img.name,
			State:       state.String(),
			BadBlocks:   bad,
			FailureRate: rate,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Image < infos[j].Image })
	return ready, infos
}
