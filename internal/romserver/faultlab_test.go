package romserver

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codecomp/internal/faultinj"
)

// fastFaultOpts are serving options tuned so fault paths resolve in
// milliseconds instead of seconds.
func fastFaultOpts() Options {
	return Options{
		PrefetchDepth:    -1,
		LoadAttempts:     3,
		RetryBackoff:     time.Millisecond,
		LoadTimeout:      time.Second,
		ReverifyInterval: 20 * time.Millisecond,
	}
}

// panicCodec panics on every Block call.
type panicCodec struct{ blocks int }

func (c *panicCodec) NumBlocks() int              { return c.blocks }
func (c *panicCodec) Block(i int) ([]byte, error) { panic(fmt.Sprintf("boom on block %d", i)) }
func (c *panicCodec) Decompress() ([]byte, error) { panic("boom") }
func (c *panicCodec) CompressedSize() int         { return c.blocks }
func (c *panicCodec) Ratio() float64              { return 1 }

// TestWorkerSurvivesPanickingCodec is the regression test for the crash
// the tentpole fixes: before faultlab, a panic inside codec.Block
// propagated out of Server.handle, killed a pool worker and (unrecovered
// on that goroutine) crashed the process. Now the panic becomes
// ErrCodecPanic and the pool keeps serving other images afterwards.
func TestWorkerSurvivesPanickingCodec(t *testing.T) {
	stub := &stubCodec{blocks: 8}
	s := New(func() Options { o := fastFaultOpts(); o.Workers = 2; return o }())
	defer s.Close()
	s.addCodec("boom", &panicCodec{blocks: 8}, "stub")
	s.addCodec("good", stub, "stub")

	// Hammer the panicking image more times than there are workers: if
	// panics killed workers, the pool would be dead after two requests.
	for i := 0; i < 10; i++ {
		_, _, err := s.Block("boom", i%8)
		if !errors.Is(err, ErrCodecPanic) {
			t.Fatalf("Block(boom) err = %v, want ErrCodecPanic", err)
		}
	}
	// The pool still serves the healthy image.
	for i := 0; i < 8; i++ {
		data, _, err := s.Block("good", i)
		if err != nil || !bytes.Equal(data, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("Block(good,%d) = %v, %v after panics", i, data, err)
		}
	}
	st := s.Stats()
	if st.Faults.PanicsRecovered < 10 {
		t.Fatalf("panics recovered = %d, want >= 10", st.Faults.PanicsRecovered)
	}
	for _, is := range st.Images {
		if is.Name == "boom" {
			if is.PanicsRecovered < 10 || is.Health == Healthy.String() {
				t.Fatalf("boom image stats = %+v", is)
			}
		}
	}
}

// flakyCodec fails its first failures calls with a transient error, then
// succeeds.
type flakyCodec struct {
	stubCodec
	failures  int64
	permanent bool
}

type tempErr struct{ msg string }

func (e *tempErr) Error() string   { return e.msg }
func (e *tempErr) Temporary() bool { return true }

func (c *flakyCodec) Block(i int) ([]byte, error) {
	n := c.calls.Add(1)
	if n <= c.failures {
		if c.permanent {
			return nil, errors.New("deterministic decode failure")
		}
		return nil, &tempErr{msg: "transient decode failure"}
	}
	return []byte{byte(i), byte(i >> 8)}, nil
}

func TestTransientErrorsRetriedWithBackoff(t *testing.T) {
	flaky := &flakyCodec{stubCodec: stubCodec{blocks: 4}, failures: 2}
	s := New(fastFaultOpts())
	defer s.Close()
	s.addCodec("flaky", flaky, "stub")

	data, _, err := s.Block("flaky", 1)
	if err != nil || !bytes.Equal(data, []byte{1, 0}) {
		t.Fatalf("Block = %v, %v; want success after retries", data, err)
	}
	st := s.Stats()
	if st.Faults.Retries != 2 || st.Images[0].Retries != 2 {
		t.Fatalf("retries = %d (image %d), want 2", st.Faults.Retries, st.Images[0].Retries)
	}
	if flaky.calls.Load() != 3 {
		t.Fatalf("codec called %d times, want 3", flaky.calls.Load())
	}
	// The successful final outcome keeps the image healthy.
	if st.Images[0].Health != Healthy.String() || st.Images[0].LoadFailures != 0 {
		t.Fatalf("image stats = %+v", st.Images[0])
	}
}

func TestPermanentErrorsNotRetried(t *testing.T) {
	flaky := &flakyCodec{stubCodec: stubCodec{blocks: 4}, failures: 1 << 30, permanent: true}
	s := New(fastFaultOpts())
	defer s.Close()
	s.addCodec("broken", flaky, "stub")

	if _, _, err := s.Block("broken", 0); err == nil {
		t.Fatal("broken block served")
	}
	if flaky.calls.Load() != 1 {
		t.Fatalf("permanent error retried: %d calls", flaky.calls.Load())
	}
	st := s.Stats()
	if st.Images[0].LoadFailures != 1 || st.Images[0].BadBlocks != 1 {
		t.Fatalf("image stats = %+v", st.Images[0])
	}
	if st.Images[0].Health != Degraded.String() {
		t.Fatalf("health = %s, want degraded (bad block listed)", st.Images[0].Health)
	}
}

// wedgedCodec blocks forever on a channel.
type wedgedCodec struct {
	stubCodec
	wedge chan struct{}
}

func (c *wedgedCodec) Block(i int) ([]byte, error) {
	<-c.wedge
	return nil, errors.New("unreachable")
}

func TestDecompressionDeadline(t *testing.T) {
	wedged := &wedgedCodec{stubCodec: stubCodec{blocks: 2}, wedge: make(chan struct{})}
	defer close(wedged.wedge)
	o := fastFaultOpts()
	o.LoadAttempts = 1
	o.LoadTimeout = 30 * time.Millisecond
	s := New(o)
	defer s.Close()
	s.addCodec("wedged", wedged, "stub")

	start := time.Now()
	_, _, err := s.Block("wedged", 0)
	if !errors.Is(err, ErrDecompressTimeout) {
		t.Fatalf("err = %v, want ErrDecompressTimeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v", d)
	}
	if st := s.Stats(); st.Faults.Timeouts != 1 || st.Images[0].Timeouts != 1 {
		t.Fatalf("timeout counters: %+v", st.Faults)
	}
}

// TestCorruptBlockNeverServedNeverCached: with an injector flipping a bit
// in every decompression, every attempt fails verification, the read
// reports ErrCorruptBlock, and nothing lands in the cache.
func TestCorruptBlockNeverServedNeverCached(t *testing.T) {
	_, text := testText(t)
	s := New(fastFaultOpts())
	defer s.Close()
	if _, err := s.AddImage("prog", marshalSAMC(t, text)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaults("prog", &faultinj.Options{Seed: 1, BitFlipRate: 1}); err != nil {
		t.Fatal(err)
	}

	_, _, err := s.Block("prog", 3)
	if !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("err = %v, want ErrCorruptBlock", err)
	}
	if s.cache.Contains(blockKey(s, "prog", 3)) {
		t.Fatal("corrupt block entered the cache")
	}
	st := s.Stats()
	// Every attempt was corrupt: LoadAttempts detections, one failure.
	if st.Faults.CorruptBlocks != 3 || st.Images[0].CorruptBlocks != 3 {
		t.Fatalf("corrupt detections = %d, want 3", st.Faults.CorruptBlocks)
	}
	if st.Images[0].LoadFailures != 1 || st.Images[0].BadBlocks != 1 {
		t.Fatalf("image stats = %+v", st.Images[0])
	}

	// Clearing the faults and re-reading serves the true bytes and heals
	// the bad-block entry.
	if err := s.SetFaults("prog", nil); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Block("prog", 3)
	if err != nil || !bytes.Equal(data, text[3*32:4*32]) {
		t.Fatalf("post-recovery Block = %v, %v", len(data), err)
	}
	if st := s.Stats(); st.Images[0].BadBlocks != 0 {
		t.Fatalf("bad block not cleared: %+v", st.Images[0])
	}
}

// TestHealthStateMachine drives an image through healthy → degraded →
// quarantined → (faults stop, background re-verify) → healthy, and
// checks the quarantine serving contract: cached blocks keep serving,
// fresh decompressions are refused.
func TestHealthStateMachine(t *testing.T) {
	_, text := testText(t)
	s := New(fastFaultOpts())
	defer s.Close()
	info, err := s.AddImage("prog", marshalSAMC(t, text))
	if err != nil {
		t.Fatal(err)
	}
	if info.Health != Healthy.String() {
		t.Fatalf("fresh image health = %s", info.Health)
	}
	if info.Blocks < 20 {
		t.Fatalf("test image too small: %d blocks", info.Blocks)
	}

	// Warm one good block before the faults start.
	warm := info.Blocks - 1
	if _, _, err := s.Block("prog", warm); err != nil {
		t.Fatal(err)
	}

	// Blocks 0..15 now fail permanently.
	bad := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if err := s.SetFaults("prog", &faultinj.Options{ErrorBlocks: bad}); err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for _, b := range bad {
		if _, _, err := s.Block("prog", b); err == nil {
			t.Fatalf("faulted block %d served", b)
		}
		if st := s.Stats(); st.Images[0].Health == Degraded.String() {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("degraded state never observed on the way down")
	}
	ready, infos := s.Health()
	if ready || len(infos) != 1 || infos[0].State != Quarantined.String() {
		t.Fatalf("Health() = %v %+v, want quarantined", ready, infos)
	}
	if st := s.Stats(); st.Ready {
		t.Fatal("Stats.Ready true while quarantined")
	}

	// Quarantine contract: the warmed block still serves from cache...
	if data, hit, err := s.Block("prog", warm); err != nil || !hit {
		t.Fatalf("cached read under quarantine: hit=%v err=%v", hit, err)
	} else if want := text[warm*32:]; !bytes.Equal(data, want[:min(32, len(want))]) {
		t.Fatal("cached read returned wrong bytes")
	}
	// ...but a fresh decompression is refused.
	if _, _, err := s.Block("prog", 17); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("uncached read under quarantine: %v, want ErrQuarantined", err)
	}

	// Faults stop; the background re-verifier must walk the image back to
	// healthy without any client traffic.
	if err := s.SetFaults("prog", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if st := s.Stats(); st.Images[0].Health == Healthy.String() {
			if st.Images[0].Reverifies == 0 || st.Faults.Reverifies == 0 {
				t.Fatalf("recovered without reverifies: %+v", st.Images[0])
			}
			if st.Images[0].HealthTransitions < 3 || st.Faults.HealthTransitions < 3 {
				t.Fatalf("transitions = %d, want >= 3", st.Images[0].HealthTransitions)
			}
			break
		}
		if time.Now().After(deadline) {
			st := s.Stats()
			t.Fatalf("image never recovered: %+v", st.Images[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ready, _ := s.Health(); !ready {
		t.Fatal("not ready after recovery")
	}
	// Normal serving resumed.
	if _, _, err := s.Block("prog", 17); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
}

// TestChaosInvariantInProcess is the in-process version of the loadgen
// -chaos invariant: under injected bit flips and transient errors, every
// successfully served byte matches the original text, and the corruption
// that was injected was detected (not silently served).
func TestChaosInvariantInProcess(t *testing.T) {
	_, text := testText(t)
	o := fastFaultOpts()
	o.CacheBlocks = 16 // far below the image: keep forcing real decompressions
	s := New(o)
	defer s.Close()
	info, err := s.AddImage("prog", marshalSAMC(t, text))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaults("prog", &faultinj.Options{Seed: 42, BitFlipRate: 0.05, TransientRate: 0.02}); err != nil {
		t.Fatal(err)
	}

	var served, failed int
	for round := 0; round < 3; round++ {
		for b := 0; b < info.Blocks; b++ {
			data, _, err := s.Block("prog", b)
			if err != nil {
				failed++
				continue
			}
			served++
			end := (b + 1) * 32
			if end > len(text) {
				end = len(text)
			}
			if !bytes.Equal(data, text[b*32:end]) {
				t.Fatalf("round %d block %d: corrupt bytes served", round, b)
			}
		}
	}
	st := s.Stats()
	fs, err := s.FaultStats("prog")
	if err != nil || fs == nil {
		t.Fatalf("FaultStats = %+v, %v", fs, err)
	}
	t.Logf("served %d, failed %d; detected %d corruptions, %d retries; injected %+v",
		served, failed, st.Faults.CorruptBlocks, st.Faults.Retries, *fs)
	if fs.BitFlips == 0 {
		t.Fatal("injector never flipped a bit — test proves nothing")
	}
	if st.Faults.CorruptBlocks != fs.BitFlips {
		t.Fatalf("injected %d flips but detected %d corruptions", fs.BitFlips, st.Faults.CorruptBlocks)
	}
	if served == 0 || failed > served/10 {
		t.Fatalf("implausible chaos outcome: %d served, %d failed", served, failed)
	}
}

// TestConcurrentAddRemoveRace races AddImage/RemoveImage cycles against
// Block/Range readers: every successful read must carry bytes from one of
// the two registered contents, removed images must report ErrNotFound,
// and (under -race) no memory races.
func TestConcurrentAddRemoveRace(t *testing.T) {
	_, full := testText(t)
	textA := full[:2048]
	textB := append([]byte(nil), textA...)
	for i := range textB {
		textB[i] ^= 0xA5
	}
	imgA := marshalSAMC(t, textA)
	imgB := marshalSAMC(t, textB)
	blocks := len(textA) / 32

	s := New(Options{PrefetchDepth: -1, RetryBackoff: time.Millisecond})
	defer s.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn registration
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			data := imgA
			if i%2 == 1 {
				data = imgB
			}
			if _, err := s.AddImage("img", data); err != nil {
				t.Errorf("AddImage: %v", err)
				return
			}
			if i%3 == 2 {
				if err := s.RemoveImage("img"); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("RemoveImage: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				b := rng.Intn(blocks)
				data, _, err := s.Block("img", b)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue
					}
					t.Errorf("Block(%d): %v", b, err)
					return
				}
				wantA, wantB := textA[b*32:(b+1)*32], textB[b*32:(b+1)*32]
				if !bytes.Equal(data, wantA) && !bytes.Equal(data, wantB) {
					t.Errorf("Block(%d): stale or mixed bytes", b)
					return
				}
				if b+1 < blocks && rng.Intn(8) == 0 {
					rdata, err := s.Range("img", b, b+1)
					if err == nil && !bytes.Equal(rdata[:32], wantA) && !bytes.Equal(rdata[:32], wantB) {
						t.Errorf("Range(%d): stale bytes", b)
						return
					}
				}
			}
		}(int64(g))
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Once removed, reads deterministically miss.
	s.RemoveImage("img") //nolint:errcheck — may already be gone
	if _, _, err := s.Block("img", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after remove: %v", err)
	}
}

// TestStaleInsertCannotServeNewRegistration pins down the generation-key
// fix in blockcache: a load that was in flight when its image was
// replaced inserts under the old generation and can never satisfy reads
// of the new registration.
func TestStaleInsertCannotServeNewRegistration(t *testing.T) {
	gate := make(chan struct{})
	old := &stubCodec{blocks: 4, gate: gate}
	s := New(Options{PrefetchDepth: -1})
	defer s.Close()
	s.addCodec("img", old, "stub")

	// Start a read that stalls inside the old codec's loader.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Block("img", 0) //nolint:errcheck — the bytes belong to the old registration
	}()
	deadline := time.Now().Add(10 * time.Second)
	for old.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("old loader never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Replace the image while that load is still in flight, then let the
	// stale load complete and insert (under the old generation).
	replacement := &flakyCodec{stubCodec: stubCodec{blocks: 4}}
	if err := s.RemoveImage("img"); err != nil {
		t.Fatal(err)
	}
	s.addCodec("img", replacement, "stub")
	close(gate)
	<-done

	// The new registration must decompress fresh — never see the stale
	// insert. (stubCodec block 0 = {0,0}; flakyCodec block 0 = {0,0} too,
	// so distinguish by observing a miss + a fresh codec call.)
	before := replacement.calls.Load()
	_, hit, err := s.Block("img", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit || replacement.calls.Load() == before {
		t.Fatal("new registration served the stale insert")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
