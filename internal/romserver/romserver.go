// Package romserver is the serving layer over the paper's compressed-ROM
// images: an in-memory registry of block-addressable images (SAMC, SADC,
// byte-Huffman, rANS — anything codecomp.UnmarshalAny accepts) that answers
// random-access block reads the way the Wolfe/Chanin refill engine does,
// but scaled for concurrent clients.
//
// Three mechanisms sit between a read and a decompression:
//
//   - every read goes through a sharded singleflight LRU cache
//     (internal/blockcache), so hot blocks decompress once;
//   - all decompression work runs on a bounded worker pool, so a burst of
//     cold reads cannot spawn unbounded concurrent decompressions;
//   - a demand miss speculatively warms the blocks the image's prefetch
//     policy predicts, on the same pool (best-effort: prefetches are
//     dropped, never queued, when the pool is saturated). Every image
//     starts on the sequential policy — warm i+1..i+k after missing i,
//     the paper's refill locality — and can be switched to a trained
//     markov or hotset policy (internal/policy) at runtime.
//
// The tracelab loop closes over three calls: every demand fetch is
// recorded into a per-image ring buffer (internal/traceprof); Train
// compiles the ring (or TrainFrom an offline trace) into an access-pattern
// profile; SetPolicy compiles the profile into the image's live policy,
// pinning a hotset policy's pin set into the cache's protected region.
//
// Close drains: queued work is finished, workers exit, and every API call
// afterwards reports ErrClosed.
package romserver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codecomp"
	"codecomp/internal/blockcache"
	"codecomp/internal/faultinj"
	"codecomp/internal/obsv"
	"codecomp/internal/overload"
	"codecomp/internal/policy"
	"codecomp/internal/traceprof"
)

var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("romserver: server closed")
	// ErrNotFound is returned for reads of an unregistered image.
	ErrNotFound = errors.New("romserver: image not found")
	// ErrOutOfRange is returned for block indices outside an image.
	ErrOutOfRange = errors.New("romserver: block out of range")
	// ErrNoTrace is returned by Train when the image has no recorded
	// accesses yet.
	ErrNoTrace = errors.New("romserver: no recorded trace")
	// ErrNoProfile is returned by SetPolicy for a policy that needs
	// training (markov, hotset) before the image has been trained.
	ErrNoProfile = errors.New("romserver: image not trained")
	// ErrBadPolicy is returned by SetPolicy for an unknown policy name or
	// invalid policy parameters.
	ErrBadPolicy = errors.New("romserver: bad policy")
	// ErrCorruptBlock is returned when a decompressed block fails
	// verification against the integrity sidecar on every attempt. The
	// corrupt bytes are never served and never cached.
	ErrCorruptBlock = errors.New("romserver: corrupt block detected")
	// ErrQuarantined is returned for reads that would need a fresh
	// decompression of a quarantined image (cached blocks still serve).
	ErrQuarantined = errors.New("romserver: image quarantined")
	// ErrCodecPanic is a codec panic recovered into an error by the
	// hardened load path.
	ErrCodecPanic = errors.New("romserver: codec panicked")
	// ErrDecompressTimeout is one decompression attempt exceeding
	// Options.LoadTimeout.
	ErrDecompressTimeout = errors.New("romserver: decompression timed out")
)

// Options configures a Server. Zero values pick serving-friendly defaults.
type Options struct {
	// CacheBlocks is the total decompressed-block cache capacity
	// (default 4096 blocks).
	CacheBlocks int
	// CacheShards is the cache shard count (default 16).
	CacheShards int
	// Workers is the decompression pool size (default 8).
	Workers int
	// QueueDepth is the pending-task queue length (default 4×Workers).
	QueueDepth int
	// PrefetchDepth is how many sequential blocks a demand miss warms
	// (default 4; negative disables prefetching).
	PrefetchDepth int
	// TraceBuffer is the per-image access-trace ring size, in block
	// accesses (default 65536; negative disables recording).
	TraceBuffer int

	// LoadAttempts is how many times one block load is tried before the
	// read fails (default 3). Only transient errors, decompression
	// timeouts and integrity failures are retried.
	LoadAttempts int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt with full jitter (default 2ms).
	RetryBackoff time.Duration
	// LoadTimeout bounds one decompression attempt (default 5s; negative
	// disables the deadline).
	LoadTimeout time.Duration
	// HealthWindow is the per-image sliding window of load outcomes that
	// drives the health state machine (default 64).
	HealthWindow int
	// ReverifyInterval is how often the background pass re-verifies
	// degraded/quarantined images (default 5s; negative disables it).
	ReverifyInterval time.Duration

	// Overload enables the overload layer — deadline-aware admission in
	// front of the pool queue, brownout degradation, retry budgets (see
	// internal/overload). Nil disables it entirely: requests queue and
	// retry exactly as before. With overload enabled the pool queue
	// becomes a bounded admission queue: a full queue rejects instead of
	// blocking the caller.
	Overload *overload.Config

	// Tiering configures the background recompressor that migrates tiered
	// images' blocks between codec tiers as their heat profiles shift (see
	// tiering.go). Nil disables the background pass; the synchronous
	// Recompress API and the tiering metrics work regardless.
	Tiering *TieringOptions

	// Registry receives the server's metrics (counters, gauges, latency
	// histograms). Nil creates a private registry, exposed via Registry().
	Registry *obsv.Registry
	// Tracer, when set, samples per-block-load request traces (queue
	// wait / decode / verify phases, retry and corruption events). Nil
	// disables tracing.
	Tracer *obsv.Tracer
}

func (o Options) withDefaults() Options {
	if o.CacheBlocks <= 0 {
		o.CacheBlocks = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.PrefetchDepth == 0 {
		o.PrefetchDepth = 4
	}
	if o.PrefetchDepth < 0 {
		o.PrefetchDepth = 0
	}
	if o.TraceBuffer == 0 {
		o.TraceBuffer = 65536
	}
	if o.TraceBuffer < 0 {
		o.TraceBuffer = 0
	}
	if o.LoadAttempts <= 0 {
		o.LoadAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.LoadTimeout == 0 {
		o.LoadTimeout = 5 * time.Second
	}
	if o.LoadTimeout < 0 {
		o.LoadTimeout = 0
	}
	if o.HealthWindow <= 0 {
		o.HealthWindow = 64
	}
	if o.ReverifyInterval == 0 {
		o.ReverifyInterval = 5 * time.Second
	}
	if o.ReverifyInterval < 0 {
		o.ReverifyInterval = 0
	}
	if o.Tiering != nil {
		t := o.Tiering.withDefaults()
		o.Tiering = &t
	}
	return o
}

// image is one registered compressed ROM plus its serving counters,
// tracelab state and faultlab state.
type image struct {
	name     string
	codec    codecomp.BlockCodec
	format   string
	blocks   int
	origSize int
	// gen is this registration's cache-key generation: a load in flight
	// across a replace/remove inserts under the old generation and can
	// never be served as a block of the new one. Registrations hand out
	// generations from a counter, so gen always fits the low 32 bits the
	// tiered per-block generations (blockGens) leave free.
	gen uint64

	// tiered is the codec downcast to its mixed-codec form, set only for
	// tiered images; blockGens then carries one cache generation per block,
	// bumped by every tier migration so post-migration reads re-decode
	// through the block's new tier instead of hitting stale cache entries.
	tiered    *codecomp.TieredImage
	blockGens []atomic.Uint32
	// tierMu serializes recompression passes over this image (migrations
	// themselves are internally locked; the mutex keeps one pass's
	// plan/migrate/persist sequence from interleaving with another's).
	tierMu sync.Mutex
	// tierPolicy overrides the server-wide tiering policy for this image;
	// nil falls back to Options.Tiering.Policy (or its defaults).
	tierPolicy atomic.Pointer[codecomp.TierPolicy]

	// sidecar is the per-block integrity ground truth (nil for test
	// codecs registered without verification).
	sidecar *sidecar
	// health is the image's sliding-window health state machine.
	health *imageHealth
	// faults, when set, interposes a fault injector before the codec.
	faults atomic.Pointer[faultinj.Injector]

	// recorder captures the demand block-access stream (nil when
	// recording is disabled).
	recorder *traceprof.Recorder
	// profile is the last trained access profile, nil before training.
	profile atomic.Pointer[traceprof.Profile]
	// pref is the active prefetch policy; nil disables prefetching.
	pref atomic.Pointer[prefState]
	// hot is the brownout hot set (per-block flags), computed from the
	// trained profile at Train/TrainFrom; nil before training.
	hot atomic.Pointer[[]bool]

	// offsets is the cumulative decompressed-offset table behind the
	// byte-granular read path: offsets[i] is block i's first absolute
	// byte, offsets[blocks] the decompressed total (blocks are not
	// uniform — SADC packs whole units, the last block runs short).
	// Built for free from the integrity sidecar at registration; images
	// registered without one (test codecs) build it lazily on first
	// ReadAt.
	offsets     []int64
	offsetsOnce sync.Once
	offsetsErr  error

	blockReads     atomic.Int64
	rangeReads     atomic.Int64
	subblockReads  atomic.Int64
	fullReads      atomic.Int64
	decompressions atomic.Int64
	// decompressNanos/decompressedBytes accumulate the time spent inside
	// (and bytes produced by) successful codec block decodes, for the
	// decode ns/block and MB/s gauges in /metrics.
	decompressNanos   atomic.Int64
	decompressedBytes atomic.Int64

	corruptBlocks   atomic.Int64
	retries         atomic.Int64
	panicsRecovered atomic.Int64
	timeouts        atomic.Int64
	loadFailures    atomic.Int64
	reverifies      atomic.Int64
}

// key is the image's cache key for one block. Tiered images fold the
// block's migration generation into the high 32 bits, so a tier swap
// orphans the block's old cache entry (it ages out under LRU, unreachable
// under the new key) exactly like a whole-image replace orphans all of
// them.
func (img *image) key(b int) blockcache.Key {
	gen := img.gen
	if img.blockGens != nil {
		gen |= uint64(img.blockGens[b].Load()) << 32
	}
	return blockcache.Key{Image: img.name, Gen: gen, Block: b}
}

// blockOffsets returns the image's cumulative offset table, building it
// lazily (one decode per block) for images registered without a sidecar.
func (img *image) blockOffsets() ([]int64, error) {
	img.offsetsOnce.Do(func() {
		if img.offsets != nil {
			return
		}
		offs := make([]int64, img.blocks+1)
		for i := 0; i < img.blocks; i++ {
			blk, err := img.codec.Block(i)
			if err != nil {
				img.offsetsErr = fmt.Errorf("romserver: offset table for %q: %w", img.name, err)
				return
			}
			offs[i+1] = offs[i] + int64(len(blk))
		}
		img.offsets = offs
	})
	return img.offsets, img.offsetsErr
}

// prefState is an image's active policy plus the pin set it holds in the
// cache's protected region.
type prefState struct {
	p    policy.Prefetcher
	name string
	pins []int
}

// task is one unit of pool work; reply is nil for prefetches. enq and
// span are set for demand fetches only: enq feeds the queue-wait
// histogram, span carries the sampled request trace across the pool.
// rng, when set, makes the task a batched range decode (block and reply
// are unused; the range job carries its own reply channel). ctx, when
// set, is the demand caller's request context: a ticket whose context
// has expired by the time a worker picks it up is retired without
// dispatching the decode.
type task struct {
	img   *image
	block int
	reply chan result
	enq   time.Time
	span  *obsv.Span
	rng   *rangeJob
	ctx   context.Context
}

type result struct {
	data []byte
	hit  bool
	err  error
}

// rangeJob is one contiguous miss-run of a batched range read: a single
// pool ticket that decodes blocks [first,last] back to back, inserting
// each into the cache as it lands. limit > 0 marks a sub-block read:
// block last (if it still misses by the time the worker reaches it)
// only needs its first limit bytes, decoded via the partial path and
// never cached.
type rangeJob struct {
	first, last int
	limit       int
	reply       chan rangeResult
}

type rangeResult struct {
	blocks  [][]byte
	decoded int
	// decodedBytes is total codec output paid for: full blocks plus any
	// partial tail prefix.
	decodedBytes int
	err          error
}

// FillFunc is an alternative block source consulted on a cache miss
// before local decompression — the cluster layer installs one that asks
// replica nodes' hot caches (peer cache-fill). The returned bytes are
// verified against the integrity sidecar exactly like a decompression:
// a corrupt fill is rejected, counted, and the load falls through to the
// local codec, so a misbehaving peer can never be served.
type FillFunc func(image string, block int) ([]byte, bool)

// Server is the concurrent compressed-ROM block service.
type Server struct {
	opts  Options
	cache *blockcache.Cache

	// fill, when set, is consulted on every miss before decompressing
	// locally (see FillFunc). Atomic so it can be installed after New.
	fill atomic.Pointer[FillFunc]

	mu     sync.RWMutex
	images map[string]*image
	closed bool

	// policyMu serializes SetPolicy's unpin/pin transitions.
	policyMu sync.Mutex

	tasks   chan task
	quit    chan struct{} // closed first: stop accepting work
	drained chan struct{} // closed after the pool has fully drained
	wg      sync.WaitGroup

	// nextGen hands out cache-key generations to registrations.
	nextGen atomic.Uint64

	// ovl is the overload layer (admission, brownout, retry budget);
	// nil when Options.Overload is unset.
	ovl *overloadState
	// inflight counts worker-pool tasks currently executing, behind the
	// romserver_inflight_decodes gauge.
	inflight atomic.Int64

	// met holds every server-lifetime instrument (prefetch and faultlab
	// rollups, latency histograms); Stats() reads the counters back, so
	// /metrics and the JSON stats can never disagree.
	met *serverMetrics
}

// New starts a server and its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		opts:    opts,
		cache:   blockcache.New(opts.CacheBlocks, opts.CacheShards),
		images:  make(map[string]*image),
		tasks:   make(chan task, opts.QueueDepth),
		quit:    make(chan struct{}),
		drained: make(chan struct{}),
		met:     newServerMetrics(reg, opts.Tracer),
	}
	if opts.Overload != nil {
		s.ovl = newOverloadState(*opts.Overload, opts.Workers, s.met)
	}
	s.registerServerGauges()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	if opts.ReverifyInterval > 0 {
		s.wg.Add(1)
		go s.reverifier(opts.ReverifyInterval)
	}
	if opts.Tiering != nil && opts.Tiering.Interval > 0 {
		s.wg.Add(1)
		go s.recompressor(opts.Tiering.Interval)
	}
	if s.ovl != nil {
		// The evaluator must tick independently of traffic: brownout
		// recovery happens precisely when requests stop arriving.
		s.wg.Add(1)
		go s.overloadEvaluator(s.ovl.cfg.EvalInterval)
	}
	return s
}

// Close stops the server: no new work is accepted, queued and in-flight
// decompressions finish, then the pool exits. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	close(s.drained)
	return nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case t := <-s.tasks:
			s.handle(t)
		case <-s.quit:
			// Drain whatever was queued before shutdown, then exit.
			for {
				select {
				case t := <-s.tasks:
					s.handle(t)
				default:
					return
				}
			}
		}
	}
}

// loader is a pooled binding of (server, image, block) to the hardened load
// path. The bound fn is created once per pooled object, so handing a loader
// to the cache does not allocate a closure per cache miss.
type loader struct {
	s     *Server
	img   *image
	block int
	span  *obsv.Span
	ctx   context.Context
	fn    func() ([]byte, error)
}

var loaderPool = sync.Pool{New: func() any {
	l := &loader{}
	l.fn = l.load
	return l
}}

func (l *loader) load() ([]byte, error) {
	// Quarantined images refuse fresh decompressions; their cached
	// (verified) blocks above this loader keep serving.
	if l.img.health.State() == Quarantined {
		return nil, fmt.Errorf("%w: %q", ErrQuarantined, l.img.name)
	}
	return l.s.loadVerified(l.ctx, l.img, l.block, l.span, true)
}

func (l *loader) release() {
	l.s, l.img, l.span, l.ctx = nil, nil, nil, nil
	loaderPool.Put(l)
}

func (s *Server) handle(t task) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if t.rng != nil {
		s.handleRange(t)
		return
	}
	if t.ctx != nil && t.ctx.Err() != nil {
		// The caller gave up while the ticket was queued: retire it
		// without dispatching the decode. The caller ends the span.
		s.met.queueExpired.Inc()
		if t.reply != nil {
			t.reply <- result{err: t.ctx.Err()}
		}
		return
	}
	key := t.img.key(t.block)
	l := loaderPool.Get().(*loader)
	l.s, l.img, l.block, l.span, l.ctx = s, t.img, t.block, t.span, t.ctx
	if t.reply == nil {
		// Speculative warm: tag the load so a later demand hit counts
		// toward prefetch accuracy.
		if _, _, err := s.cache.GetPrefetch(key, l.fn); err == nil {
			s.met.prefetchCompleted.Inc()
		}
		l.release()
		return
	}
	wait := time.Since(t.enq)
	s.met.queueWait.Observe(wait)
	t.span.Phase("queue_wait", wait)
	svcStart := time.Now()
	data, hit, err := s.cache.Get(key, l.fn)
	if s.ovl != nil {
		s.ovl.adm.ObserveWait(wait)
		s.ovl.adm.ObserveService(time.Since(svcStart))
	}
	l.release()
	if hit {
		t.span.Event("cache hit")
	}
	t.reply <- result{data: data, hit: hit, err: err}
	if err == nil && !hit {
		if s.ovl != nil && s.ovl.ctl.Level() != overload.Healthy {
			// Under pressure, speculative warms are the first work shed.
			s.met.prefetchSuppressed.Inc()
			return
		}
		s.prefetch(t.img, t.block)
	}
}

// handleRange runs one contiguous miss-run on a single pool ticket. Each
// block is re-checked with Peek first (a concurrent demand read may have
// landed it since the dispatch pass), decoded through the same hardened
// loadVerified path demand reads use, and inserted with the cache's
// neutral Put — so the run populates the cache for later demand traffic
// without counting as demand misses or touching prefetch accounting.
func (s *Server) handleRange(t task) {
	rj := t.rng
	wait := time.Since(t.enq)
	s.met.queueWait.Observe(wait)
	blocks := make([][]byte, 0, rj.last-rj.first+1)
	decoded, decodedBytes := 0, 0
	for b := rj.first; b <= rj.last; b++ {
		key := t.img.key(b)
		if data, ok := s.cache.Peek(key); ok {
			blocks = append(blocks, data)
			continue
		}
		if t.img.health.State() == Quarantined {
			rj.reply <- rangeResult{err: fmt.Errorf("%w: %q", ErrQuarantined, t.img.name)}
			return
		}
		if rj.limit > 0 && b == rj.last {
			// Sub-block tail: decode only the needed prefix; the result
			// cannot be sidecar-verified, so it is served but not cached.
			data, n, err := s.decodePrefix(t.img, b, rj.limit)
			if err != nil {
				rj.reply <- rangeResult{err: err}
				return
			}
			decoded++
			decodedBytes += n
			blocks = append(blocks, data)
			continue
		}
		data, err := s.loadVerified(t.ctx, t.img, b, nil, true)
		if err != nil {
			rj.reply <- rangeResult{err: err}
			return
		}
		s.cache.Put(key, data)
		decoded++
		decodedBytes += len(data)
		blocks = append(blocks, data)
	}
	rj.reply <- rangeResult{blocks: blocks, decoded: decoded, decodedBytes: decodedBytes}
}

// prefetch best-effort enqueues warms for the blocks the image's policy
// predicts after a demand miss. It must never block: workers call it, and
// a blocking send from a worker into its own pool deadlocks under load.
func (s *Server) prefetch(img *image, miss int) {
	ref := img.pref.Load()
	if ref == nil {
		return
	}
	for _, b := range ref.p.Predict(miss) {
		if b < 0 || b >= img.blocks {
			continue
		}
		if s.cache.Contains(img.key(b)) {
			continue
		}
		select {
		case s.tasks <- task{img: img, block: b}:
			s.met.prefetchIssued.Inc()
		case <-s.quit:
			return
		default:
			s.met.prefetchDropped.Inc()
		}
	}
}

// replyPool recycles the one-shot reply channels of demand fetches; a
// buffered channel is reusable once its result has been received.
var replyPool = sync.Pool{New: func() any { return make(chan result, 1) }}

// fetch runs one demand read through the pool and waits for its result.
// Demand fetches are the access stream the trace recorder captures.
func (s *Server) fetch(img *image, block int) ([]byte, bool, error) {
	return s.fetchCtx(context.Background(), img, block)
}

// fetchCtx is fetch carrying the caller's request context through the
// pool: the overload layer's gates run before the enqueue, an expired
// context cancels still-queued work, and the context's deadline clamps
// the per-decode deadline inside the hardened load path.
func (s *Server) fetchCtx(ctx context.Context, img *image, block int) ([]byte, bool, error) {
	if img.recorder != nil {
		img.recorder.Record(block)
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		done = ctx.Done()
	}
	if s.ovl != nil {
		if data, hit, err, handled := s.admit(ctx, img, block); handled {
			return data, hit, err
		}
	}
	sp := s.met.tracer.Begin("block_load")
	if sp != nil {
		// Formatting only runs for sampled requests; unsampled ones carry
		// a nil span all the way through for free.
		sp.Eventf("img=%s block=%d", img.name, block)
	}
	reply := replyPool.Get().(chan result)
	t := task{img: img, block: block, reply: reply, enq: time.Now(), span: sp, ctx: ctx}
	if s.ovl != nil {
		// Bounded admission: a full queue rejects instead of blocking.
		select {
		case s.tasks <- t:
		case <-s.quit:
			replyPool.Put(reply)
			sp.End(ErrClosed)
			return nil, false, ErrClosed
		default:
			replyPool.Put(reply)
			s.met.admissionQueueFull.Inc()
			rej := &overload.RejectError{
				Reason:     overload.ReasonQueueFull,
				RetryAfter: retryAfter(s.ovl.adm.EstimateWait(len(s.tasks))),
			}
			sp.End(rej)
			return nil, false, rej
		}
	} else {
		select {
		case s.tasks <- t:
		case <-done:
			replyPool.Put(reply)
			sp.End(ctx.Err())
			return nil, false, ctx.Err()
		case <-s.quit:
			replyPool.Put(reply)
			sp.End(ErrClosed)
			return nil, false, ErrClosed
		}
	}
	data, hit, err := s.awaitFetch(reply, done, ctx, sp)
	if s.ovl != nil && !errors.Is(err, ErrClosed) {
		s.ovl.ctl.ReportOutcome(err == nil)
	}
	return data, hit, err
}

// awaitFetch waits for a dispatched demand ticket. An expired caller
// context abandons the (buffered) reply channel — the queued ticket's
// own ctx check retires it without a decode — so the caller unblocks at
// its deadline instead of waiting out the queue.
func (s *Server) awaitFetch(reply chan result, done <-chan struct{}, ctx context.Context, sp *obsv.Span) ([]byte, bool, error) {
	select {
	case r := <-reply:
		replyPool.Put(reply)
		sp.End(r.err)
		return r.data, r.hit, r.err
	case <-done:
		sp.End(ctx.Err())
		return nil, false, ctx.Err()
	case <-s.drained:
		// Shutdown raced our enqueue; the drain loop may still have served
		// the task, so check once more before giving up.
		select {
		case r := <-reply:
			replyPool.Put(reply)
			sp.End(r.err)
			return r.data, r.hit, r.err
		default:
			// The queued task may still send later; abandon the channel
			// (it is buffered) instead of recycling it.
			sp.End(ErrClosed)
			return nil, false, ErrClosed
		}
	}
}

// ImageInfo describes a registered image.
type ImageInfo struct {
	Name           string  `json:"name"`
	Format         string  `json:"format"`
	Blocks         int     `json:"blocks"`
	OrigSize       int     `json:"orig_size"`
	CompressedSize int     `json:"compressed_size"`
	Ratio          float64 `json:"ratio"`
	// Health is the image's current health state ("healthy", "degraded"
	// or "quarantined").
	Health string `json:"health"`
}

func (img *image) info() ImageInfo {
	return ImageInfo{
		Name:           img.name,
		Format:         img.format,
		Blocks:         img.blocks,
		OrigSize:       img.origSize,
		CompressedSize: img.codec.CompressedSize(),
		Ratio:          img.codec.Ratio(),
		Health:         img.health.State().String(),
	}
}

// imageMeta pulls block-size/original-size metadata off the concrete image
// types (the BlockCodec interface intentionally stays minimal).
func imageMeta(c codecomp.BlockCodec) (origSize int) {
	switch v := c.(type) {
	case *codecomp.SAMCImage:
		return v.OrigSize
	case *codecomp.SADCImage:
		return v.OrigSize
	case *codecomp.HuffmanImage:
		return v.OrigSize
	case *codecomp.RANSImage:
		return v.OrigSize
	case *codecomp.TieredImage:
		return v.OrigSize()
	}
	return 0
}

// AddImage registers a marshaled image under name, auto-detecting its
// format by magic. Registration decompresses every block once to build
// the integrity sidecar (per-block CRC32-C + length) that all later
// worker decompressions are verified against — an image whose blocks do
// not decompress cleanly is rejected here instead of failing in a
// worker. Re-registering a name replaces the image and drops its cached
// blocks.
func (s *Server) AddImage(name string, data []byte) (ImageInfo, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return ImageInfo{}, fmt.Errorf("romserver: invalid image name %q", name)
	}
	codec, err := codecomp.UnmarshalAny(data)
	if err != nil {
		return ImageInfo{}, err
	}
	sc, err := buildSidecar(codec)
	if err != nil {
		return ImageInfo{}, fmt.Errorf("romserver: image %q rejected at registration: %w", name, err)
	}
	img := s.newImage(name, codec, codecomp.DetectFormat(data))
	img.sidecar = sc
	img.offsets = sc.blockOffsets()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ImageInfo{}, ErrClosed
	}
	_, replaced := s.images[name]
	s.images[name] = img
	s.mu.Unlock()
	if replaced {
		s.cache.InvalidateImage(name)
	}
	if img.tiered != nil {
		s.updateTierGauges()
	}
	return img.info(), nil
}

// RemoveImage deregisters an image and drops its cached blocks.
func (s *Server) RemoveImage(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	img, ok := s.images[name]
	delete(s.images, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.cache.InvalidateImage(name)
	if img.tiered != nil {
		s.updateTierGauges()
	}
	return nil
}

func (s *Server) lookup(name string) (*image, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	img, ok := s.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return img, nil
}

// Image returns metadata for one registered image.
func (s *Server) Image(name string) (ImageInfo, error) {
	img, err := s.lookup(name)
	if err != nil {
		return ImageInfo{}, err
	}
	return img.info(), nil
}

// Images lists all registered images, sorted by name.
func (s *Server) Images() []ImageInfo {
	s.mu.RLock()
	out := make([]ImageInfo, 0, len(s.images))
	for _, img := range s.images {
		out = append(out, img.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Block returns the decompressed bytes of one cache block. The bool reports
// whether the read was a cache hit.
func (s *Server) Block(name string, i int) ([]byte, bool, error) {
	return s.BlockContext(context.Background(), name, i)
}

// BlockContext is Block under the caller's request context: the
// context's deadline drives admission control (a read whose estimated
// queue wait would blow the deadline is rejected with
// *overload.RejectError before queueing), cancels the ticket if it is
// still queued when the context expires, and clamps the per-decode
// deadline. A nil or background context behaves exactly like Block.
func (s *Server) BlockContext(ctx context.Context, name string, i int) ([]byte, bool, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, false, err
	}
	if i < 0 || i >= img.blocks {
		return nil, false, fmt.Errorf("%w: %d of %q [0,%d)", ErrOutOfRange, i, name, img.blocks)
	}
	img.blockReads.Add(1)
	return s.fetchCtx(ctx, img, i)
}

// SetFillHook installs (or, with nil, removes) the alternative block
// source consulted on cache misses before local decompression. The
// cluster layer points it at replica nodes' hot caches; see FillFunc for
// the verification contract.
func (s *Server) SetFillHook(f FillFunc) {
	if f == nil {
		s.fill.Store(nil)
		return
	}
	s.fill.Store(&f)
}

// CachedBlock returns the block's decompressed bytes only if they are in
// the cache right now — it never decompresses, never touches LRU order
// and never counts toward the demand hit/miss accounting. This is the
// node-side answer to a peer's cache-fill probe: cheap to ask, and a miss
// costs the asker nothing but the round trip.
func (s *Server) CachedBlock(name string, i int) ([]byte, bool, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, false, err
	}
	if i < 0 || i >= img.blocks {
		return nil, false, fmt.Errorf("%w: %d of %q [0,%d)", ErrOutOfRange, i, name, img.blocks)
	}
	data, ok := s.cache.Peek(img.key(i))
	return data, ok, nil
}

// Range returns the concatenated decompressed bytes of blocks [first,last],
// fetched one block (and one pool dispatch) at a time.
func (s *Server) Range(name string, first, last int) ([]byte, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if first < 0 || last >= img.blocks || first > last {
		return nil, fmt.Errorf("%w: [%d,%d] of %q [0,%d)", ErrOutOfRange, first, last, name, img.blocks)
	}
	img.rangeReads.Add(1)
	return s.assemble(img, first, last)
}

// RangeStats reports how a batched range read was served: how many of its
// blocks came straight from the cache, how many worker-pool tickets the
// miss-runs took, and how many blocks those tickets decoded. Dispatches is
// at most the number of contiguous miss-runs — always ≤ Blocks, and far
// below it on warm or sequential traffic, which is the batched path's
// whole point versus per-block reads.
type RangeStats struct {
	Blocks        int `json:"blocks"`
	CachedBlocks  int `json:"cached_blocks"`
	Dispatches    int `json:"dispatches"`
	DecodedBlocks int `json:"decoded_blocks"`
}

// RangeBatched returns the concatenated decompressed bytes of blocks
// [first,last] through the batched decode path: cached blocks are taken
// as leases (no LRU promotion, no demand hit/miss or prefetch-accuracy
// impact), and each contiguous run of missing blocks becomes ONE worker
// pool dispatch that decodes the run back to back, inserting every block
// into the cache for later demand traffic. Unlike demand misses, batched
// range reads trigger no speculative prefetch — the range itself already
// states exactly what is wanted. This is the copying adapter over
// RangeView; callers that can consume parts (the HTTP layer) should use
// the view directly and skip the concatenation.
func (s *Server) RangeBatched(name string, first, last int) ([]byte, RangeStats, error) {
	v, err := s.RangeView(name, first, last)
	if err != nil {
		return nil, RangeStats{}, err
	}
	defer v.Close()
	return v.AppendTo(make([]byte, 0, v.Len())), v.Stats(), nil
}

// awaitRange waits for one range dispatch, tolerating the same
// enqueue/shutdown race fetch does: drain may close while the drain loop
// is still serving our queued job, so check the reply once more.
func awaitRange(reply chan rangeResult, drained chan struct{}) (rangeResult, error) {
	select {
	case rr := <-reply:
		return rr, rr.err
	case <-drained:
		select {
		case rr := <-reply:
			return rr, rr.err
		default:
			return rangeResult{}, ErrClosed
		}
	}
}

// FullText returns the whole decompressed program.
func (s *Server) FullText(name string) ([]byte, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	img.fullReads.Add(1)
	if img.blocks == 0 {
		return nil, nil
	}
	return s.assemble(img, 0, img.blocks-1)
}

func (s *Server) assemble(img *image, first, last int) ([]byte, error) {
	out := make([]byte, 0, (last-first+1)*32)
	for b := first; b <= last; b++ {
		blk, _, err := s.fetch(img, b)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// TraceSnapshot returns the image's recorded demand-access trace, oldest
// first (empty when recording is disabled or nothing was fetched yet).
func (s *Server) TraceSnapshot(name string) (*traceprof.Trace, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	t := &traceprof.Trace{Image: name, Blocks: img.blocks}
	if img.recorder != nil {
		t.Accesses = img.recorder.Snapshot()
	}
	return t, nil
}

// Train compiles the image's recorded access trace into a profile and
// stores it for SetPolicy. ErrNoTrace when nothing has been recorded.
func (s *Server) Train(name string) (*traceprof.Profile, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if img.recorder == nil || img.recorder.Len() == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoTrace, name)
	}
	p := traceprof.BuildProfile(img.recorder.Snapshot(), img.blocks)
	img.profile.Store(p)
	s.setHotSet(img, p)
	return p, nil
}

// TrainFrom trains the image from an externally supplied access trace
// (e.g. a loadgen -tracefile replayed offline) instead of the live ring.
func (s *Server) TrainFrom(name string, accesses []int) (*traceprof.Profile, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(accesses) == 0 {
		return nil, fmt.Errorf("%w: %q (empty trace)", ErrNoTrace, name)
	}
	p := traceprof.BuildProfile(accesses, img.blocks)
	img.profile.Store(p)
	s.setHotSet(img, p)
	return p, nil
}

// Profile returns the image's trained profile, or ErrNoProfile.
func (s *Server) Profile(name string) (*traceprof.Profile, error) {
	img, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	p := img.profile.Load()
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoProfile, name)
	}
	return p, nil
}

// PolicySpec selects a prefetch policy for one image. Zero fields take the
// server defaults.
type PolicySpec struct {
	// Policy is "sequential", "markov" or "hotset".
	Policy string `json:"policy"`
	// Depth is the sequential/fallback/chain prefetch depth (default:
	// Options.PrefetchDepth).
	Depth int `json:"depth"`
	// TopK is how many Markov successors each miss warms (default 2).
	TopK int `json:"top_k"`
	// PinCount is how many hot blocks hotset pins (default: a quarter of
	// the cache; always clamped to half the cache so demand traffic keeps
	// room).
	PinCount int `json:"pin_count"`
}

// PolicyInfo describes an image's active policy.
type PolicyInfo struct {
	Image  string `json:"image"`
	Policy string `json:"policy"`
	// Pinned is how many blocks the policy holds in the protected region.
	Pinned int `json:"pinned"`
}

// SetPolicy switches the image's prefetch policy. markov and hotset
// require a prior Train/TrainFrom. A hotset policy's pin set is
// decompressed and pinned here, before the first request sees the policy;
// the previous policy's pins are released.
func (s *Server) SetPolicy(name string, spec PolicySpec) (PolicyInfo, error) {
	img, err := s.lookup(name)
	if err != nil {
		return PolicyInfo{}, err
	}
	depth := spec.Depth
	if depth <= 0 {
		depth = s.opts.PrefetchDepth
		if depth <= 0 {
			depth = 4
		}
	}
	pinCount := spec.PinCount
	if pinCount <= 0 {
		pinCount = s.cache.Capacity() / 4
	}
	if max := s.cache.Capacity() / 2; pinCount > max {
		pinCount = max
	}
	prof := img.profile.Load()
	p, err := policy.New(spec.Policy, policy.Config{
		Blocks:   img.blocks,
		Depth:    depth,
		TopK:     spec.TopK,
		PinCount: pinCount,
		Profile:  prof,
	})
	if err != nil {
		if prof == nil && (spec.Policy == "markov" || spec.Policy == "hotset") {
			return PolicyInfo{}, fmt.Errorf("%w: %q (%s policy needs training)", ErrNoProfile, name, spec.Policy)
		}
		return PolicyInfo{}, fmt.Errorf("%w: %v", ErrBadPolicy, err)
	}

	st := &prefState{p: p, name: p.Name()}
	if pinner, ok := p.(policy.Pinner); ok {
		st.pins = pinner.Pinned()
	}
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	s.cache.UnpinImage(name)
	// Decompress and pin the hot set directly (an admin-time operation;
	// it bypasses the worker pool and the trace recorder on purpose).
	var pinned []int
	for _, b := range st.pins {
		if b < 0 || b >= img.blocks {
			continue
		}
		key := img.key(b)
		block := b
		_, _, err := s.cache.Get(key, func() ([]byte, error) {
			return s.loadVerified(nil, img, block, nil, true)
		})
		if err != nil {
			s.cache.UnpinImage(name)
			return PolicyInfo{}, fmt.Errorf("romserver: pinning block %d of %q: %w", b, name, err)
		}
		if s.cache.Pin(key) {
			pinned = append(pinned, b)
		}
	}
	st.pins = pinned
	img.pref.Store(st)
	return PolicyInfo{Image: name, Policy: st.name, Pinned: len(pinned)}, nil
}

// Policy reports the image's active policy.
func (s *Server) Policy(name string) (PolicyInfo, error) {
	img, err := s.lookup(name)
	if err != nil {
		return PolicyInfo{}, err
	}
	return img.policyInfo(), nil
}

func (img *image) policyInfo() PolicyInfo {
	info := PolicyInfo{Image: img.name, Policy: "none"}
	if ref := img.pref.Load(); ref != nil {
		info.Policy = ref.name
		info.Pinned = len(ref.pins)
	}
	return info
}

// PrefetchStats counts the speculative warms behind demand misses.
type PrefetchStats struct {
	// Issued counts prefetch tasks enqueued onto the pool.
	Issued int64 `json:"issued"`
	// Dropped counts prefetches skipped because the pool was saturated.
	Dropped int64 `json:"dropped"`
	// Completed counts prefetched blocks that landed in the cache.
	Completed int64 `json:"completed"`
	// Hits counts demand hits on prefetch-warmed blocks — the prefetches
	// that paid off.
	Hits int64 `json:"hits"`
	// Wasted counts prefetched blocks evicted before any demand hit.
	Wasted int64 `json:"wasted"`
}

// Accuracy is Hits over Completed: the fraction of finished prefetches a
// demand read actually consumed (so far).
func (p PrefetchStats) Accuracy() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Completed)
}

// ImageStats is per-image serving counters plus the image metadata.
type ImageStats struct {
	ImageInfo
	// BlockReads, RangeReads and FullReads count API-level requests.
	BlockReads    int64 `json:"block_reads"`
	RangeReads    int64 `json:"range_reads"`
	FullReads     int64 `json:"full_reads"`
	SubblockReads int64 `json:"subblock_reads"`
	// Decompressions counts actual codec.Block invocations — the work the
	// cache and singleflight exist to avoid.
	Decompressions int64 `json:"decompressions"`
	// DecodeNsPerBlock is the mean wall-clock nanoseconds one block decode
	// took (demand, prefetch, pinning and re-verify loads alike).
	DecodeNsPerBlock float64 `json:"decode_ns_per_block"`
	// DecodeMBPerSec is the mean decode throughput in decompressed
	// megabytes per second.
	DecodeMBPerSec float64 `json:"decode_mb_per_sec"`
	// Policy is the active prefetch policy name ("none" when disabled).
	Policy string `json:"policy"`
	// Pinned is how many blocks the policy pinned.
	Pinned int `json:"pinned"`
	// Trained reports whether the image has a trained profile.
	Trained bool `json:"trained"`
	// TraceLen is how many accesses the trace ring currently holds.
	TraceLen int `json:"trace_len"`

	// CorruptBlocks counts decompressions rejected by the integrity
	// sidecar (detected, never served, never cached).
	CorruptBlocks int64 `json:"corrupt_blocks"`
	// Retries counts extra load attempts after a retryable failure.
	Retries int64 `json:"retries"`
	// PanicsRecovered counts codec panics contained by the load path.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Timeouts counts load attempts that hit the decompression deadline.
	Timeouts int64 `json:"timeouts"`
	// LoadFailures counts loads that failed after all attempts.
	LoadFailures int64 `json:"load_failures"`
	// Reverifies counts background re-verification loads of this image.
	Reverifies int64 `json:"reverifies"`
	// BadBlocks is how many blocks are currently on the bad list.
	BadBlocks int `json:"bad_blocks"`
	// FailureRate is the failing fraction of the health outcome window.
	FailureRate float64 `json:"failure_rate"`
	// HealthTransitions counts this image's health state changes.
	HealthTransitions int64 `json:"health_transitions"`
	// Faults reports injected-fault counters when a fault injector is
	// installed (chaos mode); omitted otherwise.
	Faults *faultinj.Stats `json:"faults,omitempty"`
}

// FaultStatsRollup is the server-lifetime faultlab counters (they survive
// image removal, unlike the per-image copies).
type FaultStatsRollup struct {
	CorruptBlocks     int64 `json:"corrupt_blocks"`
	Retries           int64 `json:"retries"`
	PanicsRecovered   int64 `json:"panics_recovered"`
	Timeouts          int64 `json:"timeouts"`
	LoadFailures      int64 `json:"load_failures"`
	Reverifies        int64 `json:"reverifies"`
	HealthTransitions int64 `json:"health_transitions"`
}

// Stats is a snapshot of the whole serving layer.
// SubblockStats rolls up the byte-granular sub-block read path: how many
// ReadAt requests ran, how many decompressed bytes they returned, and how
// much tail-block work the partial decoder did (and therefore skipped —
// PartialDecodedBytes counts codec output actually produced; the remainder
// of each tail block was never decoded at all).
type SubblockStats struct {
	Reads               int64 `json:"reads"`
	Bytes               int64 `json:"bytes"`
	PartialDecodes      int64 `json:"partial_decodes"`
	PartialDecodedBytes int64 `json:"partial_decoded_bytes"`
}

type Stats struct {
	Cache         blockcache.Stats `json:"cache"`
	CacheHitRatio float64          `json:"cache_hit_ratio"`
	Prefetch      PrefetchStats    `json:"prefetch"`
	Faults        FaultStatsRollup `json:"faults"`
	// Subblock rolls up the byte-granular read path.
	Subblock SubblockStats `json:"subblock"`
	// Overload is the overload layer's snapshot, nil when disabled.
	Overload *OverloadStats `json:"overload,omitempty"`
	// Ready is false while any image is quarantined (the readiness
	// signal behind /readyz).
	Ready  bool         `json:"ready"`
	Images []ImageStats `json:"images"`
}

// Stats snapshots cache, prefetch, faultlab and per-image counters.
func (s *Server) Stats() Stats {
	cs := s.cache.Stats()
	st := Stats{
		Cache:         cs,
		CacheHitRatio: cs.HitRatio(),
		Prefetch: PrefetchStats{
			Issued:    s.met.prefetchIssued.Value(),
			Dropped:   s.met.prefetchDropped.Value(),
			Completed: s.met.prefetchCompleted.Value(),
			Hits:      cs.PrefetchHits,
			Wasted:    cs.PrefetchEvicted,
		},
		Faults: FaultStatsRollup{
			CorruptBlocks:     s.met.corruptBlocks.Value(),
			Retries:           s.met.retries.Value(),
			PanicsRecovered:   s.met.codecPanics.Value(),
			Timeouts:          s.met.decodeTimeouts.Value(),
			LoadFailures:      s.met.loadFailures.Value(),
			Reverifies:        s.met.reverifies.Value(),
			HealthTransitions: s.met.healthTransitions.Value(),
		},
		Subblock: SubblockStats{
			Reads:               s.met.subblockReads.Value(),
			Bytes:               s.met.subblockBytes.Value(),
			PartialDecodes:      s.met.partialDecodes.Value(),
			PartialDecodedBytes: s.met.partialDecodedBytes.Value(),
		},
		Overload: s.overloadStats(),
		Ready:    true,
	}
	s.mu.RLock()
	for _, img := range s.images {
		is := ImageStats{
			ImageInfo:       img.info(),
			BlockReads:      img.blockReads.Load(),
			RangeReads:      img.rangeReads.Load(),
			FullReads:       img.fullReads.Load(),
			SubblockReads:   img.subblockReads.Load(),
			Decompressions:  img.decompressions.Load(),
			Trained:         img.profile.Load() != nil,
			CorruptBlocks:   img.corruptBlocks.Load(),
			Retries:         img.retries.Load(),
			PanicsRecovered: img.panicsRecovered.Load(),
			Timeouts:        img.timeouts.Load(),
			LoadFailures:    img.loadFailures.Load(),
			Reverifies:      img.reverifies.Load(),
		}
		if decs, ns := img.decompressions.Load(), img.decompressNanos.Load(); decs > 0 && ns > 0 {
			is.DecodeNsPerBlock = float64(ns) / float64(decs)
			is.DecodeMBPerSec = float64(img.decompressedBytes.Load()) / 1e6 / (float64(ns) / 1e9)
		}
		state, bad, rate, transitions := img.health.snapshot()
		is.Health = state.String()
		is.BadBlocks, is.FailureRate, is.HealthTransitions = bad, rate, transitions
		if state == Quarantined {
			st.Ready = false
		}
		if f := img.faults.Load(); f != nil {
			fs := f.Stats()
			is.Faults = &fs
		}
		pi := img.policyInfo()
		is.Policy, is.Pinned = pi.Policy, pi.Pinned
		if img.recorder != nil {
			is.TraceLen = img.recorder.Len()
		}
		st.Images = append(st.Images, is)
	}
	s.mu.RUnlock()
	sort.Slice(st.Images, func(i, j int) bool { return st.Images[i].Name < st.Images[j].Name })
	return st
}

// CacheStats returns just the block cache counters.
func (s *Server) CacheStats() blockcache.Stats { return s.cache.Stats() }

// newImage builds the serving state for one codec: trace recorder sized by
// Options.TraceBuffer, the default sequential prefetch policy, a fresh
// cache-key generation and a fresh health state machine.
func (s *Server) newImage(name string, codec codecomp.BlockCodec, format string) *image {
	img := &image{
		name:     name,
		codec:    codec,
		format:   format,
		blocks:   codec.NumBlocks(),
		origSize: imageMeta(codec),
		gen:      s.nextGen.Add(1),
		health:   newImageHealth(s.opts.HealthWindow),
	}
	if t, ok := codec.(*codecomp.TieredImage); ok {
		img.tiered = t
		img.blockGens = make([]atomic.Uint32, img.blocks)
	}
	if s.opts.TraceBuffer > 0 {
		img.recorder = traceprof.NewRecorder(s.opts.TraceBuffer)
	}
	if s.opts.PrefetchDepth > 0 {
		img.pref.Store(&prefState{
			p:    policy.NewSequential(s.opts.PrefetchDepth, img.blocks),
			name: "sequential",
		})
	}
	return img
}

// addCodec registers an already-built codec directly; tests use it to
// instrument decompression with stub codecs.
func (s *Server) addCodec(name string, codec codecomp.BlockCodec, format string) *image {
	img := s.newImage(name, codec, format)
	s.mu.Lock()
	s.images[name] = img
	s.mu.Unlock()
	return img
}
