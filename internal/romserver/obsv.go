// Observability wiring for the serving layer: every server-lifetime
// counter lives in an obsv.Registry so one scrape of /metrics sees the
// same numbers Stats() reports, plus the latency histograms (queue wait,
// decode, verify, whole block load) that only the registry carries.
// Labeled and unlabeled instruments are resolved once here, at server
// construction; the hot path only ever touches pre-resolved atomics.
package romserver

import (
	"codecomp/internal/faultinj"
	"codecomp/internal/obsv"
)

// serverMetrics is the server's pre-resolved instrument set. The counters
// are the source of truth for the server-lifetime rollups (Stats() reads
// them back); the cache and image gauges are read-at-scrape funcs over
// the subsystems' own counters, so nothing is double-accounted.
type serverMetrics struct {
	reg    *obsv.Registry
	tracer *obsv.Tracer

	// Load-path latency phases, demand and background alike.
	queueWait *obsv.Histogram
	decode    *obsv.Histogram
	verify    *obsv.Histogram
	blockLoad *obsv.Histogram

	decompressions    *obsv.Counter
	corruptBlocks     *obsv.Counter
	retries           *obsv.Counter
	codecPanics       *obsv.Counter
	decodeTimeouts    *obsv.Counter
	loadFailures      *obsv.Counter
	reverifies        *obsv.Counter
	healthTransitions *obsv.Counter

	prefetchIssued    *obsv.Counter
	prefetchDropped   *obsv.Counter
	prefetchCompleted *obsv.Counter

	// Batched range-read path.
	rangeReads         *obsv.Counter
	rangeDispatches    *obsv.Counter
	rangeCachedBlocks  *obsv.Counter
	rangeDecodedBlocks *obsv.Counter
	rangeRead          *obsv.Histogram

	// Byte-granular sub-block read path (ReadAt / GET .../bytes).
	subblockReads       *obsv.Counter
	subblockBytes       *obsv.Counter
	partialDecodes      *obsv.Counter
	partialDecodedBytes *obsv.Counter
	subblockRead        *obsv.Histogram

	peerFills       *obsv.Counter
	peerFillRejects *obsv.Counter

	// Overload layer (always registered so the metric surface — and the
	// runbook coverage tests — do not depend on configuration; the
	// counters just stay zero when the layer is off).
	overloadTransitions *obsv.Counter
	admissionDeadline   *obsv.Counter
	admissionQueueFull  *obsv.Counter
	brownoutShed        *obsv.Counter
	prefetchSuppressed  *obsv.Counter
	queueExpired        *obsv.Counter
	retryDenied         *obsv.Counter

	faultBitFlips   *obsv.Counter
	faultTransients *obsv.Counter
	faultPermanents *obsv.Counter
	faultPanics     *obsv.Counter

	// Heat-tiered recompression (always registered, like the overload
	// families; zero until a tiered image is served).
	tieringBlocks          *obsv.GaugeVec
	tieringMigrations      *obsv.Counter
	tieringVerifyFailures  *obsv.Counter
	tieringBytesSaved      *obsv.Counter
	tieringBytesSpent      *obsv.Counter
	tieringPasses          *obsv.Counter
	tieringPersistFailures *obsv.Counter
}

// newServerMetrics registers the serving layer's families on reg and
// resolves every instrument the hot path needs.
func newServerMetrics(reg *obsv.Registry, tracer *obsv.Tracer) *serverMetrics {
	m := &serverMetrics{
		reg:    reg,
		tracer: tracer,

		queueWait: reg.Histogram("romserver_queue_wait_seconds",
			"Time a demand block read waited in the worker-pool queue."),
		decode: reg.Histogram("romserver_decode_seconds",
			"Wall-clock time of one decompression attempt (including deadline and panic-recovery overhead)."),
		verify: reg.Histogram("romserver_verify_seconds",
			"Time verifying one decompressed block against the integrity sidecar."),
		blockLoad: reg.Histogram("romserver_block_load_seconds",
			"End-to-end time of one hardened block load: all attempts, backoff, verification."),

		decompressions: reg.Counter("romserver_decompressions_total",
			"Codec block decompressions actually executed (the work the cache exists to avoid)."),
		corruptBlocks: reg.Counter("romserver_corrupt_blocks_total",
			"Decompressed blocks rejected by the integrity sidecar (detected, never served, never cached)."),
		retries: reg.Counter("romserver_retries_total",
			"Extra load attempts after a retryable failure."),
		codecPanics: reg.Counter("romserver_codec_panics_total",
			"Codec panics recovered into errors by the hardened load path."),
		decodeTimeouts: reg.Counter("romserver_decode_timeouts_total",
			"Decompression attempts that exceeded the load deadline."),
		loadFailures: reg.Counter("romserver_load_failures_total",
			"Block loads that failed after all attempts."),
		reverifies: reg.Counter("romserver_reverifies_total",
			"Background re-verification loads of degraded or quarantined images."),
		healthTransitions: reg.Counter("romserver_health_transitions_total",
			"Image health state changes (healthy/degraded/quarantined, either direction)."),

		prefetchIssued: reg.Counter("romserver_prefetch_issued_total",
			"Prefetch tasks enqueued onto the worker pool."),
		prefetchDropped: reg.Counter("romserver_prefetch_dropped_total",
			"Prefetches skipped because the pool queue was saturated."),
		prefetchCompleted: reg.Counter("romserver_prefetch_completed_total",
			"Prefetched blocks that landed in the cache."),

		rangeReads: reg.Counter("romserver_range_reads_total",
			"Batched range reads served (GET /images/{name}/blocks?range=i-j)."),
		rangeDispatches: reg.Counter("romserver_range_dispatches_total",
			"Worker-pool tickets used by batched range reads — one per contiguous miss-run, not one per block."),
		rangeCachedBlocks: reg.Counter("romserver_range_cached_blocks_total",
			"Range-read blocks served straight from the cache (Peek: no LRU promotion, no demand hit/miss impact)."),
		rangeDecodedBlocks: reg.Counter("romserver_range_decoded_blocks_total",
			"Range-read blocks decoded by batched dispatches and inserted into the cache."),
		rangeRead: reg.Histogram("romserver_range_read_seconds",
			"End-to-end time of one batched range read: dispatch, decode and reassembly."),

		subblockReads: reg.Counter("romserver_subblock_reads_total",
			"Byte-granular sub-block reads served (ReadAt / GET /images/{name}/bytes)."),
		subblockBytes: reg.Counter("romserver_subblock_bytes_total",
			"Decompressed bytes returned by sub-block reads."),
		partialDecodes: reg.Counter("romserver_partial_decodes_total",
			"Tail blocks of sub-block reads decoded only up to the requested offset (served unverified, never cached)."),
		partialDecodedBytes: reg.Counter("romserver_partial_decoded_bytes_total",
			"Codec output bytes produced by partial tail decodes — compare against block size × partial decodes to see the skipped work."),
		subblockRead: reg.Histogram("romserver_subblock_read_seconds",
			"End-to-end time of one byte-granular sub-block read."),

		peerFills: reg.Counter("romserver_peer_fills_total",
			"Cache misses served by the fill hook (a replica's hot cache) after sidecar verification, skipping local decompression."),
		peerFillRejects: reg.Counter("romserver_peer_fill_rejects_total",
			"Fill-hook responses rejected by the integrity sidecar (discarded; the load fell through to local decompression)."),

		overloadTransitions: reg.Counter("overload_level_transitions_total",
			"Brownout level changes (healthy/pressured/browned_out, either direction)."),
		brownoutShed: reg.Counter("overload_brownout_shed_total",
			"Cold demand misses shed while browned out (not cached, not in the trained hot set)."),
		prefetchSuppressed: reg.Counter("overload_prefetch_suppressed_total",
			"Demand misses whose speculative warms were suppressed because the server was pressured or browned out."),
		queueExpired: reg.Counter("overload_queue_expired_total",
			"Queued tickets retired without a decode because the caller's context expired while they waited."),
		retryDenied: reg.Counter("overload_retry_denied_total",
			"Load retries refused by the token-bucket retry budget."),

		faultBitFlips: reg.Counter("faultinj_bitflips_total",
			"Injected output bit flips (chaos mode)."),
		faultTransients: reg.Counter("faultinj_transient_errors_total",
			"Injected retryable load failures (chaos mode)."),
		faultPermanents: reg.Counter("faultinj_permanent_errors_total",
			"Injected permanent load failures (chaos mode)."),
		faultPanics: reg.Counter("faultinj_panics_total",
			"Injected codec panics (chaos mode)."),

		tieringMigrations: reg.Counter("tiering_migrations_total",
			"Blocks migrated between codec tiers by recompression passes (each an encode-verify-swap that bumped the block's cache generation)."),
		tieringVerifyFailures: reg.Counter("tiering_verify_failures_total",
			"Tier migrations rolled back because the re-encoded block failed the round-trip or sidecar verification (the old tier kept serving)."),
		tieringBytesSaved: reg.Counter("tiering_bytes_saved_total",
			"Compressed bytes reclaimed by migrations into denser tiers."),
		tieringBytesSpent: reg.Counter("tiering_bytes_spent_total",
			"Compressed bytes spent by migrations into faster tiers (the storage cost of lower decode latency)."),
		tieringPasses: reg.Counter("tiering_passes_total",
			"Recompression passes completed (background and synchronous Recompress alike)."),
		tieringPersistFailures: reg.Counter("tiering_persist_failures_total",
			"Recompression passes whose post-migration persist hook failed (the in-memory tier map is ahead of disk until a later pass persists)."),
	}
	rejects := reg.CounterVec("overload_admission_rejects_total",
		"Demand reads rejected by admission control, by reason (deadline: estimated wait exceeded the request deadline; queue_full: the bounded admission queue had no room).",
		"reason")
	m.admissionDeadline = rejects.With("deadline")
	m.admissionQueueFull = rejects.With("queue_full")
	m.tieringBlocks = reg.GaugeVec("tiering_blocks",
		"Blocks currently stored in each codec tier across all tiered images (event-driven: refreshed at registration changes and after every recompression pass).",
		"tier")
	return m
}

// registerServerGauges registers the read-at-scrape families that mirror
// the cache's and server's own state. Separate from newServerMetrics
// because the funcs close over the fully constructed *Server.
func (s *Server) registerServerGauges() {
	reg := s.met.reg
	reg.CounterFunc("blockcache_hits_total",
		"Demand reads served from the decompressed-block cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("blockcache_misses_total",
		"Demand reads that required a decompression.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("blockcache_deduped_total",
		"Concurrent reads coalesced onto one in-flight load by singleflight.",
		func() float64 { return float64(s.cache.Stats().Deduped) })
	reg.CounterFunc("blockcache_evictions_total",
		"Cache entries evicted by LRU pressure.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc("blockcache_prefetch_hits_total",
		"Demand hits on prefetch-warmed blocks (the prefetches that paid off).",
		func() float64 { return float64(s.cache.Stats().PrefetchHits) })
	reg.CounterFunc("blockcache_prefetch_evicted_total",
		"Prefetched blocks evicted before any demand hit (wasted prefetches).",
		func() float64 { return float64(s.cache.Stats().PrefetchEvicted) })
	reg.GaugeFunc("blockcache_entries",
		"Blocks currently cached.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("blockcache_bytes",
		"Decompressed bytes currently cached.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("blockcache_pinned",
		"Blocks held in the cache's protected (pinned) region.",
		func() float64 { return float64(s.cache.Stats().Pinned) })
	reg.CounterFunc("blockcache_leases_acquired_total",
		"Block leases handed out (zero-copy views pinned by a reference instead of borrowed).",
		func() float64 { return float64(s.cache.Stats().LeasesAcquired) })
	reg.GaugeFunc("blockcache_leases_active",
		"Block leases currently held; a permanently nonzero floor here is a leaked lease.",
		func() float64 { return float64(s.cache.Stats().LeasesActive) })
	reg.GaugeFunc("blockcache_retired_lease_bufs",
		"Evicted or replaced blocks whose buffers outstanding leases still pin (freed when the last lease releases).",
		func() float64 { return float64(s.cache.Stats().RetiredLeaseBufs) })
	reg.GaugeFunc("blockcache_retired_lease_bytes",
		"Decompressed bytes pinned by leases on retired (evicted/replaced) blocks — memory the LRU thinks it freed but readers still hold.",
		func() float64 { return float64(s.cache.Stats().RetiredLeaseBytes) })

	reg.GaugeFunc("romserver_images",
		"Registered images.",
		func() float64 {
			s.mu.RLock()
			n := len(s.images)
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("romserver_images_unready",
		"Images currently quarantined (readiness is false while nonzero).",
		func() float64 {
			s.mu.RLock()
			imgs := make([]*image, 0, len(s.images))
			for _, img := range s.images {
				imgs = append(imgs, img)
			}
			s.mu.RUnlock()
			var n int
			for _, img := range imgs {
				if img.health.State() == Quarantined {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("romserver_queue_depth",
		"Tasks currently waiting in the worker-pool queue.",
		func() float64 { return float64(len(s.tasks)) })
	reg.GaugeFunc("romserver_inflight_decodes",
		"Worker-pool tasks currently executing (decode, verify or cached-reply work).",
		func() float64 { return float64(s.inflight.Load()) })

	// Overload gauges are registered unconditionally like the counters;
	// with the layer off they read as a permanently healthy server.
	reg.GaugeFunc("overload_level",
		"Current brownout level (0 healthy, 1 pressured, 2 browned out).",
		func() float64 { return float64(s.OverloadLevel()) })
	reg.GaugeFunc("overload_retry_budget_tokens",
		"Retry-budget tokens currently available.",
		func() float64 {
			if s.ovl == nil {
				return 0
			}
			return s.ovl.bud.Tokens()
		})
	reg.GaugeFunc("overload_queue_wait_estimate_seconds",
		"Admission control's current estimate of the queue wait a new ticket would see.",
		func() float64 {
			if s.ovl == nil {
				return 0
			}
			return s.ovl.adm.EstimateWait(len(s.tasks)).Seconds()
		})
	reg.GaugeFunc("overload_goodput_ratio",
		"Success fraction of the brownout controller's recent outcome window (1.0 when idle or disabled).",
		func() float64 {
			if s.ovl == nil {
				return 1
			}
			good, _ := s.ovl.ctl.Goodput()
			return good
		})
}

// countFault mirrors one injected fault into the registry; installed as
// the faultinj hook by SetFaults.
func (m *serverMetrics) countFault(k faultinj.Kind) {
	switch k {
	case faultinj.KindBitFlip:
		m.faultBitFlips.Inc()
	case faultinj.KindTransient:
		m.faultTransients.Inc()
	case faultinj.KindPermanent:
		m.faultPermanents.Inc()
	case faultinj.KindPanic:
		m.faultPanics.Inc()
	}
}

// Registry returns the server's metrics registry (the one passed in
// Options.Registry, or the private registry the server created).
func (s *Server) Registry() *obsv.Registry { return s.met.reg }

// Tracer returns the server's request tracer, nil when tracing is off.
func (s *Server) Tracer() *obsv.Tracer { return s.met.tracer }
