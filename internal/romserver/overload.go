// Overload wiring for the serving layer: the admission gate in front of
// the worker-pool queue, the brownout degradation policy (prefetch off
// under pressure, cold misses shed when browned out), the retry-budget
// gate the hardened load path consults, and the background evaluator
// that keeps the brownout controller ticking — recovery must happen
// even when no traffic arrives to drive it.
package romserver

import (
	"context"
	"math"
	"time"

	"codecomp/internal/obsv"
	"codecomp/internal/overload"
	"codecomp/internal/traceprof"
)

// overloadState is the server's overload layer, nil when
// Options.Overload is unset.
type overloadState struct {
	cfg overload.Config
	adm *overload.Admission
	ctl *overload.Controller
	bud *overload.RetryBudget

	// lastQW is the previous queue-wait snapshot; the evaluator
	// differences against it to feed the admission estimator a recent
	// (windowed) wait quantile rather than the lifetime distribution.
	lastQW     obsv.HistogramSnapshot
	ticksSince int
}

// recentWaitTicks is how many evaluator ticks pass between recent-wait
// refreshes (~250ms at the default 25ms interval): long enough to
// gather a meaningful histogram delta, short enough to track a storm.
const recentWaitTicks = 10

// recentWaitMinSamples is the smallest histogram delta worth trusting
// as a wait signal; below it the window is treated as idle and cleared.
const recentWaitMinSamples = 8

func newOverloadState(cfg overload.Config, workers int, met *serverMetrics) *overloadState {
	cfg = cfg.WithDefaults()
	o := &overloadState{
		cfg: cfg,
		adm: overload.NewAdmission(workers),
		ctl: overload.NewController(cfg),
		bud: overload.NewRetryBudget(cfg.RetryRatio, cfg.RetryBurst),
	}
	o.ctl.OnChange(func(from, to overload.Level) { met.overloadTransitions.Inc() })
	return o
}

// overloadEvaluator ticks the brownout controller against queue fill
// and refreshes the admission estimator's windowed wait signal.
func (s *Server) overloadEvaluator(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.ovl.evalOnce(s)
		case <-s.quit:
			return
		}
	}
}

func (o *overloadState) evalOnce(s *Server) {
	fill := float64(len(s.tasks)) / float64(cap(s.tasks))
	o.ctl.Evaluate(fill)

	o.ticksSince++
	if o.ticksSince < recentWaitTicks {
		return
	}
	cur := s.met.queueWait.Snapshot()
	delta := cur.Sub(o.lastQW)
	switch {
	case delta.Count >= recentWaitMinSamples:
		o.adm.SetRecentWait(delta.Quantile(0.9))
		o.lastQW, o.ticksSince = cur, 0
	case delta.Count == 0:
		// Idle window: clear the signal so a long-gone storm's waits
		// cannot keep rejecting traffic, and restart the window.
		o.adm.SetRecentWait(0)
		o.lastQW, o.ticksSince = cur, 0
	default:
		// Too few samples to trust — keep accumulating into this window.
	}
}

// retryAfter turns a wait estimate into a Retry-After hint: at least a
// second, at most 30 (clients should re-resolve, not camp).
func retryAfter(est time.Duration) time.Duration {
	secs := math.Ceil(est.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// admit runs the brownout and admission gates for one demand fetch
// before it touches the pool queue. handled=true means the request was
// fully answered here (served from cache, or rejected); handled=false
// passes it on to the normal enqueue path.
func (s *Server) admit(ctx context.Context, img *image, block int) (data []byte, hit bool, err error, handled bool) {
	o := s.ovl
	if o.ctl.Level() == overload.BrownedOut {
		// Cached blocks keep serving without costing a pool worker; the
		// trained hot set may still decode; cold misses are shed first.
		if data, ok := s.cache.GetCached(img.key(block)); ok {
			return data, true, nil, true
		}
		if !img.isHot(block) {
			s.met.brownoutShed.Inc()
			est := o.adm.EstimateWait(len(s.tasks))
			return nil, false, &overload.RejectError{Reason: overload.ReasonBrownout, RetryAfter: retryAfter(est)}, true
		}
	}
	est := o.adm.EstimateWait(len(s.tasks) + 1)
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok && est > time.Until(dl) {
			s.met.admissionDeadline.Inc()
			return nil, false, &overload.RejectError{Reason: overload.ReasonDeadline, RetryAfter: retryAfter(est)}, true
		}
	}
	// Every admitted first attempt funds the retry budget.
	o.bud.OnRequest()
	return nil, false, nil, false
}

// retryAllowed is the budget gate the hardened load path consults
// before each retry attempt; always true when overload is off.
func (s *Server) retryAllowed() bool {
	if s.ovl == nil {
		return true
	}
	if s.ovl.bud.Allow() {
		return true
	}
	s.met.retryDenied.Inc()
	return false
}

// setHotSet computes the image's brownout hot set from its trained
// profile: the hottest HotSetFraction×cache-capacity blocks, the
// traffic that keeps decoding while browned out. Cheap enough to run on
// every Train even when overload is off (the slice is just unused).
func (s *Server) setHotSet(img *image, p *traceprof.Profile) {
	frac := 0.5
	if s.ovl != nil {
		frac = s.ovl.cfg.HotSetFraction
	}
	n := int(float64(s.cache.Capacity()) * frac)
	if n < 1 {
		n = 1
	}
	hot := make([]bool, img.blocks)
	for _, b := range p.HotSet(n) {
		if b >= 0 && b < img.blocks {
			hot[b] = true
		}
	}
	img.hot.Store(&hot)
}

// isHot reports whether the block is in the image's trained hot set.
// Untrained images have no hot set: everything is cold under brownout,
// which is the safe default for unknown traffic.
func (img *image) isHot(b int) bool {
	h := img.hot.Load()
	return h != nil && b >= 0 && b < len(*h) && (*h)[b]
}

// OverloadStats is the overload layer's counter snapshot, present in
// Stats only when the layer is enabled.
type OverloadStats struct {
	// Level is the current brownout level name.
	Level string `json:"level"`
	// LevelTransitions counts level changes since start.
	LevelTransitions int64 `json:"level_transitions"`
	// DeadlineRejects counts admissions refused because the estimated
	// queue wait exceeded the request deadline.
	DeadlineRejects int64 `json:"deadline_rejects"`
	// QueueFullRejects counts admissions refused on a full pool queue.
	QueueFullRejects int64 `json:"queue_full_rejects"`
	// BrownoutShed counts cold misses shed while browned out.
	BrownoutShed int64 `json:"brownout_shed"`
	// QueueExpired counts tickets whose context expired while queued and
	// were retired without a decode.
	QueueExpired int64 `json:"queue_expired"`
	// RetryDenied counts retries refused by the token budget.
	RetryDenied int64 `json:"retry_denied"`
	// PrefetchSuppressed counts demand misses whose speculative warms
	// were suppressed by pressure.
	PrefetchSuppressed int64 `json:"prefetch_suppressed"`
	// RetryBudgetTokens is the budget bucket's current level.
	RetryBudgetTokens float64 `json:"retry_budget_tokens"`
	// EstimatedQueueWaitMs is the admission estimator's current view of
	// the queue wait, in milliseconds.
	EstimatedQueueWaitMs float64 `json:"estimated_queue_wait_ms"`
	// Goodput is the success fraction of the recent outcome window.
	Goodput float64 `json:"goodput"`
}

func (s *Server) overloadStats() *OverloadStats {
	o := s.ovl
	if o == nil {
		return nil
	}
	good, _ := o.ctl.Goodput()
	return &OverloadStats{
		Level:                o.ctl.Level().String(),
		LevelTransitions:     o.ctl.Transitions(),
		DeadlineRejects:      s.met.admissionDeadline.Value(),
		QueueFullRejects:     s.met.admissionQueueFull.Value(),
		BrownoutShed:         s.met.brownoutShed.Value(),
		QueueExpired:         s.met.queueExpired.Value(),
		RetryDenied:          s.met.retryDenied.Value(),
		PrefetchSuppressed:   s.met.prefetchSuppressed.Value(),
		RetryBudgetTokens:    o.bud.Tokens(),
		EstimatedQueueWaitMs: float64(o.adm.EstimateWait(len(s.tasks))) / 1e6,
		Goodput:              good,
	}
}

// OverloadLevel reports the brownout controller's current level;
// Healthy when the overload layer is disabled.
func (s *Server) OverloadLevel() overload.Level {
	if s.ovl == nil {
		return overload.Healthy
	}
	return s.ovl.ctl.Level()
}
