package overload

import (
	"sync"
	"time"
)

// ewmaAlpha weights new observations into the service-time and wait
// averages; 0.2 tracks a shifting hit/miss mix within a few dozen
// tickets without thrashing on one outlier.
const ewmaAlpha = 0.2

// Admission estimates how long a newly enqueued ticket will wait for a
// pool worker, so callers can reject requests whose deadline the wait
// would already blow. Two signals feed it, and the estimate is the max:
//
//   - a queueing model, queued × EWMA(service time) / workers, which
//     leads during a growing backlog (it sees depth instantly);
//   - the recently observed queue wait (fed from windowed deltas of the
//     obsv queue_wait histogram), which corrects the model when the
//     service-time average underestimates — e.g. a run of slow cold
//     misses behind a hit-heavy average.
//
// All methods are safe for concurrent use.
type Admission struct {
	workers int

	mu         sync.Mutex
	svcNs      float64 // EWMA of per-ticket service time
	recentNs   float64 // recent observed queue wait (upper quantile)
	observedNs float64 // EWMA of individual waits, a fallback signal
}

// NewAdmission returns an estimator for a pool of the given size (a
// non-positive size is treated as one worker).
func NewAdmission(workers int) *Admission {
	if workers < 1 {
		workers = 1
	}
	return &Admission{workers: workers}
}

// ObserveService folds one ticket's service time (everything between
// dispatch and reply) into the model. Workers call it per ticket.
func (a *Admission) ObserveService(d time.Duration) {
	a.mu.Lock()
	a.svcNs = fold(a.svcNs, float64(d))
	a.mu.Unlock()
}

// ObserveWait folds one ticket's actual queue wait into the fallback
// average. Workers call it per ticket.
func (a *Admission) ObserveWait(d time.Duration) {
	a.mu.Lock()
	a.observedNs = fold(a.observedNs, float64(d))
	a.mu.Unlock()
}

// SetRecentWait installs the latest windowed queue-wait signal (an
// upper quantile of the last scrape interval's queue_wait histogram
// delta). Zero clears it — e.g. after an idle stretch.
func (a *Admission) SetRecentWait(d time.Duration) {
	a.mu.Lock()
	a.recentNs = float64(d)
	a.mu.Unlock()
}

// EstimateWait predicts the queue wait for a ticket entering a queue
// that already holds queued tickets.
func (a *Admission) EstimateWait(queued int) time.Duration {
	if queued < 0 {
		queued = 0
	}
	a.mu.Lock()
	svc, recent, observed := a.svcNs, a.recentNs, a.observedNs
	a.mu.Unlock()
	est := float64(queued) * svc / float64(a.workers)
	if recent > est {
		est = recent
	}
	if observed > est {
		est = observed
	}
	return time.Duration(est)
}

// fold is one EWMA step; the first observation seeds the average.
func fold(avg, x float64) float64 {
	if avg == 0 {
		return x
	}
	return avg + ewmaAlpha*(x-avg)
}
