package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// Controller is the brownout state machine. The owning server calls
// Evaluate periodically with the pool queue's fill fraction and reports
// request outcomes as they complete; the controller decides the
// degradation Level everyone else reads.
//
// Escalation is immediate — the moment fill crosses an enter threshold
// (or goodput falls through the floor) the level jumps to wherever the
// signals point. De-escalation is deliberately slow: one level per
// Dwell, and only while fill sits below the current level's exit
// threshold, so a recovering server steps BrownedOut → Pressured →
// Healthy visibly instead of flapping on queue noise.
//
// Goodput is the success fraction of a ring of recent outcomes. Shed
// and rejected requests must NOT be reported — they are the mechanism
// working, and counting them would lock the controller into brownout.
// The ring is discarded after StaleAfter without reports so old
// failures cannot pin an idle server at Pressured.
type Controller struct {
	cfg   Config
	level atomic.Int32

	mu         sync.Mutex
	lastChange time.Time
	lastReport time.Time
	ring       []bool
	idx        int
	filled     int
	fails      int

	transitions atomic.Int64
	onChange    func(from, to Level)
}

// NewController returns a controller at Healthy using cfg (defaults
// applied).
func NewController(cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	return &Controller{
		cfg:        cfg,
		lastChange: cfg.Now(),
		ring:       make([]bool, cfg.GoodputWindow),
	}
}

// OnChange registers a callback invoked synchronously on every level
// transition (metrics hooks). It runs under the controller's lock and
// must not call back into the controller. Call before the controller is
// shared.
func (c *Controller) OnChange(fn func(from, to Level)) { c.onChange = fn }

// Level returns the current degradation level (lock-free).
func (c *Controller) Level() Level { return Level(c.level.Load()) }

// Transitions counts level changes since construction.
func (c *Controller) Transitions() int64 { return c.transitions.Load() }

// ReportOutcome records whether an admitted request succeeded. Do not
// report shed or rejected requests.
func (c *Controller) ReportOutcome(ok bool) {
	c.mu.Lock()
	if c.filled == len(c.ring) && !c.ring[c.idx] {
		c.fails--
	}
	c.ring[c.idx] = ok
	if !ok {
		c.fails++
	}
	c.idx = (c.idx + 1) % len(c.ring)
	if c.filled < len(c.ring) {
		c.filled++
	}
	c.lastReport = c.cfg.Now()
	c.mu.Unlock()
}

// Goodput returns the success fraction over the outcome window and how
// many outcomes back it (1.0 when empty).
func (c *Controller) Goodput() (float64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.goodputLocked()
}

func (c *Controller) goodputLocked() (float64, int) {
	if c.filled == 0 {
		return 1, 0
	}
	return 1 - float64(c.fails)/float64(c.filled), c.filled
}

// Evaluate folds the current pool-queue fill fraction (0..1) into the
// state machine and returns the resulting level. Call it on a steady
// tick — recovery depends on Evaluate running even when no traffic
// arrives.
func (c *Controller) Evaluate(fill float64) Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()

	// Age out a stale outcome window: after StaleAfter with no reports
	// the failures in it describe a load that is gone.
	if c.filled > 0 && now.Sub(c.lastReport) > c.cfg.StaleAfter {
		c.filled, c.fails, c.idx = 0, 0, 0
	}

	good, n := c.goodputLocked()
	badGoodput := n >= c.cfg.MinObservations && good < c.cfg.GoodputFloor

	desired := Healthy
	switch {
	case fill >= c.cfg.BrownoutEnter || (badGoodput && fill >= c.cfg.PressureEnter):
		desired = BrownedOut
	case fill >= c.cfg.PressureEnter || badGoodput:
		desired = Pressured
	}

	cur := Level(c.level.Load())
	switch {
	case desired > cur:
		c.setLocked(cur, desired, now)
	case desired < cur:
		if now.Sub(c.lastChange) >= c.cfg.Dwell && fill < c.exitOf(cur) && !badGoodput {
			c.setLocked(cur, cur-1, now)
		}
	}
	return Level(c.level.Load())
}

// exitOf is the hysteresis threshold fill must fall under before the
// given level may step down.
func (c *Controller) exitOf(l Level) float64 {
	if l == BrownedOut {
		return c.cfg.BrownoutExit
	}
	return c.cfg.PressureExit
}

func (c *Controller) setLocked(from, to Level, now time.Time) {
	c.level.Store(int32(to))
	c.lastChange = now
	c.transitions.Add(1)
	if c.onChange != nil {
		c.onChange(from, to)
	}
}
