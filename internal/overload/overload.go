// Package overload is the serving stack's self-protection layer: the
// admission, degradation and retry-containment machinery that keeps a
// saturated decompression pool answering *something* instead of
// collapsing into a convoy of timed-out work.
//
// The paper's slowest decoders (SAMC at ~19 MB/s) mean a burst of cold
// block misses can pin every pool worker for milliseconds at a time; a
// queue that accepts everything then serves requests whose callers gave
// up long ago. This package provides the three mechanisms the romserver
// and cluster tiers wire in front of that pool:
//
//   - Admission: an EWMA-based queue-wait estimator. A request whose
//     estimated wait already exceeds its propagated deadline is rejected
//     up front (HTTP 429 + Retry-After) instead of being accepted and
//     timing out after consuming a worker.
//   - RetryBudget: a token-bucket cap on retry amplification. Each
//     first-attempt request deposits a fraction of a token; each retry
//     (or hedge, in the router) spends one. With ratio r the system-wide
//     amplification is bounded by 1+r no matter how bursty the faults.
//   - Controller: a brownout state machine (Healthy → Pressured →
//     BrownedOut) driven by pool-queue fill and goodput. Escalation is
//     immediate; de-escalation steps down one level at a time behind
//     hysteresis thresholds and a dwell, so the level cannot flap.
//
// The degradation policy attached to the levels lives in the callers:
// romserver drops prefetch at Pressured and sheds cold (non-hot,
// uncached) misses at BrownedOut using traceprof heat, and the cluster
// router stops hedging into members that recently signalled overload.
package overload

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// DeadlineHeader is the HTTP request header carrying the client's
// remaining deadline in integer milliseconds. Every serving tier speaks
// it: the client sets it from its context deadline, codecompd and
// cluster nodes parse it into the request context, and the router
// forwards it to the replica it proxies to.
const DeadlineHeader = "X-Deadline-Ms"

// HeaderValue renders ctx's remaining deadline as a DeadlineHeader
// value: integer milliseconds, at least 1 so an almost-expired deadline
// still propagates as expired-soon rather than vanishing. Empty when
// ctx has no deadline.
func HeaderValue(ctx context.Context) string {
	dl, ok := ctx.Deadline()
	if !ok {
		return ""
	}
	ms := int64(time.Until(dl) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(ms, 10)
}

// WithDeadlineHeader applies a propagated DeadlineHeader value to ctx.
// An empty value passes ctx through with a no-op cancel; a malformed or
// non-positive value is an error the server should answer 400. The
// returned cancel must always be called.
func WithDeadlineHeader(ctx context.Context, val string) (context.Context, context.CancelFunc, error) {
	if val == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseInt(val, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("overload: invalid %s value %q (want positive integer milliseconds)", DeadlineHeader, val)
	}
	dctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return dctx, cancel, nil
}

// Reason classifies why a request was rejected by the overload layer.
type Reason string

const (
	// ReasonDeadline: the estimated queue wait exceeded the request's
	// remaining deadline — the work was destined to time out.
	ReasonDeadline Reason = "deadline"
	// ReasonQueueFull: the bounded admission queue had no room.
	ReasonQueueFull Reason = "queue_full"
	// ReasonBrownout: the server is browned out and the request needed a
	// cold decompression (not cached, not in the heat-trained hot set).
	ReasonBrownout Reason = "brownout"
)

// RejectError is a request refused by admission control or brownout.
// Callers map it onto HTTP: 429 + Retry-After for admission rejects
// (deadline, queue_full), 503 + Retry-After for brownout.
type RejectError struct {
	// Reason says which gate refused the request.
	Reason Reason
	// RetryAfter is the server's estimate of when capacity returns —
	// the value behind the Retry-After header.
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *RejectError) Error() string {
	return fmt.Sprintf("overload: rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Level is the brownout controller's degradation level.
type Level int32

const (
	// Healthy: full service — prefetch on, hedging on, everything
	// admitted that fits its deadline.
	Healthy Level = iota
	// Pressured: the pool queue is filling (or goodput is slipping).
	// Speculative work stops: prefetch is suppressed and the router
	// avoids hedging into this server.
	Pressured
	// BrownedOut: the pool is saturated. Only cached blocks and blocks
	// in the heat-trained hot set are served; cold misses are shed with
	// 503 + Retry-After so the remaining capacity goes to traffic that
	// can actually be served in time.
	BrownedOut
)

// String names the level the way the runbook and metrics do.
func (l Level) String() string {
	switch l {
	case Healthy:
		return "healthy"
	case Pressured:
		return "pressured"
	case BrownedOut:
		return "browned_out"
	}
	return fmt.Sprintf("Level(%d)", int32(l))
}

// Config tunes the overload layer. Zero values pick production-shaped
// defaults; see each field. One Config feeds all three mechanisms so a
// daemon flag or NodeOptions can carry a single struct.
type Config struct {
	// RetryRatio is the token fraction each first attempt deposits into
	// the retry budget (default 0.1 — amplification capped at ~1.1×).
	RetryRatio float64
	// RetryBurst is the budget's bucket capacity: how many retries can
	// fire back-to-back after an idle stretch (default 10).
	RetryBurst float64

	// PressureEnter is the pool-queue fill fraction at which the
	// controller escalates Healthy→Pressured (default 0.5).
	PressureEnter float64
	// PressureExit is the fill fraction the queue must fall back under
	// before Pressured de-escalates (default 0.25).
	PressureExit float64
	// BrownoutEnter is the fill fraction at which Pressured escalates to
	// BrownedOut (default 0.9).
	BrownoutEnter float64
	// BrownoutExit is the fill fraction the queue must fall back under
	// before BrownedOut steps down (default 0.5).
	BrownoutExit float64
	// GoodputFloor escalates on quality, not just depth: when the
	// success fraction of the recent outcome window drops below it, the
	// controller treats the server as pressured even with queue room
	// (default 0.5).
	GoodputFloor float64
	// GoodputWindow is the outcome ring size goodput is computed over
	// (default 256).
	GoodputWindow int
	// MinObservations is how many outcomes the window needs before
	// goodput is trusted (default 32).
	MinObservations int
	// Dwell is the minimum time between de-escalations, so recovery
	// steps down visibly instead of flapping (default 200ms).
	Dwell time.Duration
	// StaleAfter discards the outcome window when nothing has been
	// reported for this long — old failures must not pin a now-idle
	// server at Pressured (default 1s).
	StaleAfter time.Duration

	// EvalInterval is how often the owning server re-evaluates the level
	// against queue fill (default 25ms).
	EvalInterval time.Duration
	// HotSetFraction sizes the brownout hot set as a fraction of the
	// block-cache capacity (default 0.5): the hottest profile blocks
	// that keep decompressing while browned out.
	HotSetFraction float64

	// Now is the controller clock, a test hook (default time.Now).
	Now func() time.Time
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.RetryRatio <= 0 {
		c.RetryRatio = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.PressureEnter <= 0 {
		c.PressureEnter = 0.5
	}
	if c.PressureExit <= 0 {
		c.PressureExit = c.PressureEnter / 2
	}
	if c.BrownoutEnter <= 0 {
		c.BrownoutEnter = 0.9
	}
	if c.BrownoutExit <= 0 {
		c.BrownoutExit = c.BrownoutEnter / 2 * 1.1
	}
	if c.GoodputFloor <= 0 {
		c.GoodputFloor = 0.5
	}
	if c.GoodputWindow <= 0 {
		c.GoodputWindow = 256
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 32
	}
	if c.Dwell <= 0 {
		c.Dwell = 200 * time.Millisecond
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = time.Second
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 25 * time.Millisecond
	}
	if c.HotSetFraction <= 0 {
		c.HotSetFraction = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}
