package overload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRejectErrorRendersReason(t *testing.T) {
	err := error(&RejectError{Reason: ReasonBrownout, RetryAfter: 2 * time.Second})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonBrownout {
		t.Fatalf("errors.As failed on %v", err)
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty error string")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{Healthy: "healthy", Pressured: "pressured", BrownedOut: "browned_out"} {
		if got := l.String(); got != want {
			t.Fatalf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
	if got := Level(7).String(); got != "Level(7)" {
		t.Fatalf("unknown level string = %q", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.RetryRatio != 0.1 || c.RetryBurst != 10 {
		t.Fatalf("retry defaults = %v/%v", c.RetryRatio, c.RetryBurst)
	}
	if c.PressureExit >= c.PressureEnter || c.BrownoutExit >= c.BrownoutEnter {
		t.Fatalf("exit thresholds must sit below enter: %+v", c)
	}
	if c.PressureEnter >= c.BrownoutEnter {
		t.Fatalf("pressure enter %v must precede brownout enter %v", c.PressureEnter, c.BrownoutEnter)
	}
	if c.Now == nil || c.Dwell <= 0 || c.EvalInterval <= 0 {
		t.Fatalf("timing defaults missing: %+v", c)
	}
}

func TestRetryBudgetCapsAmplification(t *testing.T) {
	b := NewRetryBudget(0.1, 5)
	// Drain the initial burst.
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("initial burst exhausted at %d", i)
		}
	}
	if b.Allow() {
		t.Fatal("allowed past empty bucket")
	}
	// 1000 requests deposit 100 tokens; no more than ~100 retries (plus
	// nothing left over) may be spent.
	retries := 0
	for i := 0; i < 1000; i++ {
		b.OnRequest()
		if b.Allow() { // every request tries to retry: worst case
			retries++
		}
	}
	if retries > 101 {
		t.Fatalf("budget leaked: %d retries from 1000 requests at ratio 0.1", retries)
	}
	if retries < 95 {
		t.Fatalf("budget too stingy: %d retries from 1000 requests at ratio 0.1", retries)
	}
}

func TestRetryBudgetBurstCap(t *testing.T) {
	b := NewRetryBudget(1, 3) // ratio 1: every request deposits a full token
	for i := 0; i < 100; i++ {
		b.OnRequest()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

func TestAdmissionModelLeadsOnDepth(t *testing.T) {
	a := NewAdmission(2)
	for i := 0; i < 50; i++ {
		a.ObserveService(10 * time.Millisecond)
	}
	// 8 queued tickets over 2 workers at 10ms each: ~40ms.
	est := a.EstimateWait(8)
	if est < 30*time.Millisecond || est > 60*time.Millisecond {
		t.Fatalf("estimate = %v, want ~40ms", est)
	}
	if got := a.EstimateWait(0); got != 0 {
		t.Fatalf("empty queue estimate = %v, want 0", got)
	}
}

func TestAdmissionRecentWaitCorrectsUpward(t *testing.T) {
	a := NewAdmission(4)
	a.ObserveService(time.Millisecond) // hit-heavy average
	a.SetRecentWait(80 * time.Millisecond)
	if est := a.EstimateWait(1); est < 80*time.Millisecond {
		t.Fatalf("estimate = %v ignores recent-wait signal", est)
	}
	a.SetRecentWait(0)
	if est := a.EstimateWait(0); est != 0 {
		t.Fatalf("estimate = %v after clearing recent wait", est)
	}
}

// fakeClock drives the controller deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func newTestController() (*Controller, *fakeClock) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	c := NewController(Config{
		Dwell:      100 * time.Millisecond,
		StaleAfter: time.Second,
		Now:        clk.Now,
	})
	return c, clk
}

func TestControllerEscalatesImmediately(t *testing.T) {
	c, _ := newTestController()
	if got := c.Evaluate(0.1); got != Healthy {
		t.Fatalf("level = %v at fill 0.1", got)
	}
	if got := c.Evaluate(0.6); got != Pressured {
		t.Fatalf("level = %v at fill 0.6, want pressured", got)
	}
	if got := c.Evaluate(0.95); got != BrownedOut {
		t.Fatalf("level = %v at fill 0.95, want browned_out", got)
	}
	// Straight to brownout from healthy when the queue is already full.
	c2, _ := newTestController()
	if got := c2.Evaluate(1.0); got != BrownedOut {
		t.Fatalf("level = %v at fill 1.0, want browned_out", got)
	}
}

func TestControllerRecoversOneLevelPerDwell(t *testing.T) {
	c, clk := newTestController()
	c.Evaluate(1.0)
	if c.Level() != BrownedOut {
		t.Fatal("setup: not browned out")
	}
	// Queue empty, but dwell not elapsed: stays put.
	if got := c.Evaluate(0); got != BrownedOut {
		t.Fatalf("de-escalated before dwell: %v", got)
	}
	clk.Advance(150 * time.Millisecond)
	if got := c.Evaluate(0); got != Pressured {
		t.Fatalf("level = %v after dwell, want pressured (one step)", got)
	}
	// Second step needs its own dwell.
	if got := c.Evaluate(0); got != Pressured {
		t.Fatalf("double-stepped without dwell: %v", got)
	}
	clk.Advance(150 * time.Millisecond)
	if got := c.Evaluate(0); got != Healthy {
		t.Fatalf("level = %v, want healthy", got)
	}
	if n := c.Transitions(); n != 3 {
		t.Fatalf("transitions = %d, want 3 (one jump up, two steps down)", n)
	}
}

func TestControllerHysteresisHoldsLevel(t *testing.T) {
	c, clk := newTestController()
	c.Evaluate(0.6) // pressured
	clk.Advance(time.Second)
	// Fill below enter (0.5) but above exit (0.25): hold.
	if got := c.Evaluate(0.4); got != Pressured {
		t.Fatalf("level = %v at fill 0.4, want held at pressured", got)
	}
	if got := c.Evaluate(0.2); got != Healthy {
		t.Fatalf("level = %v at fill 0.2 after dwell, want healthy", got)
	}
}

func TestControllerGoodputEscalation(t *testing.T) {
	c, clk := newTestController()
	for i := 0; i < 64; i++ {
		c.ReportOutcome(false)
	}
	if got := c.Evaluate(0.1); got != Pressured {
		t.Fatalf("level = %v with collapsed goodput, want pressured", got)
	}
	// Collapsed goodput plus a pressured queue reads as brownout.
	if got := c.Evaluate(0.6); got != BrownedOut {
		t.Fatalf("level = %v with bad goodput at fill 0.6, want browned_out", got)
	}
	// The stale window ages out, releasing the level.
	clk.Advance(2 * time.Second)
	if got := c.Evaluate(0); got != Pressured {
		t.Fatalf("level = %v after stale window + dwell, want one step down", got)
	}
	clk.Advance(2 * time.Second)
	if got := c.Evaluate(0); got != Healthy {
		t.Fatalf("level = %v, want healthy", got)
	}
	if g, n := c.Goodput(); n != 0 || g != 1 {
		t.Fatalf("goodput window not aged out: %v over %d", g, n)
	}
}

func TestControllerOutcomeRingWraps(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	c := NewController(Config{GoodputWindow: 8, MinObservations: 4, Now: clk.Now})
	for i := 0; i < 8; i++ {
		c.ReportOutcome(false)
	}
	if g, _ := c.Goodput(); g != 0 {
		t.Fatalf("goodput = %v, want 0", g)
	}
	for i := 0; i < 8; i++ {
		c.ReportOutcome(true)
	}
	if g, n := c.Goodput(); g != 1 || n != 8 {
		t.Fatalf("goodput = %v over %d after ring wrap, want 1.0 over 8", g, n)
	}
}

func TestControllerOnChange(t *testing.T) {
	c, clk := newTestController()
	type hop struct{ from, to Level }
	var hops []hop
	c.OnChange(func(from, to Level) { hops = append(hops, hop{from, to}) })
	c.Evaluate(1.0)
	clk.Advance(time.Second)
	c.Evaluate(0)
	want := []hop{{Healthy, BrownedOut}, {BrownedOut, Pressured}}
	if len(hops) != len(want) || hops[0] != want[0] || hops[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", hops, want)
	}
}

// TestOverloadRace hammers the admission estimator, retry budget and
// brownout controller from many goroutines under -race: concurrent
// observers, outcome reporters, level readers and a ticking evaluator.
func TestOverloadRace(t *testing.T) {
	adm := NewAdmission(4)
	bud := NewRetryBudget(0.1, 10)
	ctl := NewController(Config{Dwell: time.Microsecond, StaleAfter: time.Millisecond})
	ctl.OnChange(func(from, to Level) { _ = from; _ = to })

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					adm.ObserveService(time.Duration(i%7) * time.Millisecond)
					adm.ObserveWait(time.Duration(i%3) * time.Millisecond)
				case 1:
					_ = adm.EstimateWait(i % 32)
					adm.SetRecentWait(time.Duration(i%11) * time.Millisecond)
				case 2:
					bud.OnRequest()
					_ = bud.Allow()
					_ = bud.Tokens()
				case 3:
					ctl.ReportOutcome(i%3 != 0)
					_, _ = ctl.Goodput()
				default:
					_ = ctl.Evaluate(float64(i%100) / 100)
					_ = ctl.Level()
					_ = ctl.Transitions()
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if l := ctl.Level(); l < Healthy || l > BrownedOut {
		t.Fatalf("level out of range after hammer: %v", l)
	}
}
