package overload

import "sync"

// RetryBudget is a token bucket that caps retry (and hedge)
// amplification the way gRPC's retry throttling does: every first
// attempt deposits a fraction of a token (the ratio), every retry
// spends a whole one. Sustained amplification is therefore bounded by
// 1+ratio regardless of fault burstiness; the bucket capacity only
// controls how many retries can fire back-to-back after a quiet
// stretch. The zero value is not usable — construct with
// NewRetryBudget.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

// NewRetryBudget returns a budget with the given deposit ratio and
// bucket capacity (both defaulted when <= 0: ratio 0.1, burst 10). The
// bucket starts full so cold-start faults can still retry.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{tokens: burst, burst: burst, ratio: ratio}
}

// OnRequest deposits the per-request fraction of a token, capped at the
// bucket capacity. Call it once per first attempt, never per retry.
func (b *RetryBudget) OnRequest() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Allow spends one token if a whole one is available and reports
// whether the retry (or hedge) may proceed.
func (b *RetryBudget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current bucket level, for gauges.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
