package traceprof

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestParseWriteRoundTrip(t *testing.T) {
	in := &Trace{Image: "gcc-samc", Blocks: 10, Accesses: []int{0, 1, 2, 9, 2, 1, 0}}
	var buf bytes.Buffer
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestParseTolerance(t *testing.T) {
	src := "codecomp-trace v1 blocks=8 future=stuff\n\n# comment\n 3 \n7\n"
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Blocks != 8 || !reflect.DeepEqual(tr.Accesses, []int{3, 7}) {
		t.Fatalf("parsed %+v", tr)
	}

	// blocks= omitted: inferred from the data.
	tr, err = Parse(strings.NewReader("codecomp-trace v1\n5\n2\n"))
	if err != nil || tr.Blocks != 6 {
		t.Fatalf("inferred blocks = %d, err %v", tr.Blocks, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"not a trace\n1\n",
		"codecomp-trace v2 blocks=4\n",
		"codecomp-trace v1 blocks=nope\n",
		"codecomp-trace v1 blocks=-1\n",
		"codecomp-trace v1 noequals\n",
		"codecomp-trace v1 blocks=4\n4\n",  // out of declared range
		"codecomp-trace v1 blocks=4\n-1\n", // negative
		"codecomp-trace v1 blocks=4\nxyz\n",
		"codecomp-trace v1 blocks=999999999999999999\n",
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestProfileStatistics(t *testing.T) {
	// 0→1→0→1→0→2: heat 0:3 1:2 2:1; transitions 0→1 x2, 1→0 x2, 0→2 x1.
	p := BuildProfile([]int{0, 1, 0, 1, 0, 2}, 3)
	if p.Accesses != 6 || p.Blocks != 3 {
		t.Fatalf("profile header %+v", p)
	}
	if !reflect.DeepEqual(p.Heat, []int64{3, 2, 1}) {
		t.Fatalf("heat = %v", p.Heat)
	}
	if p.Next[0][1] != 2 || p.Next[0][2] != 1 || p.Next[1][0] != 2 {
		t.Fatalf("transitions = %v", p.Next)
	}
	if got := p.Successors(0, 2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Successors(0) = %v", got)
	}
	if got := p.Successors(0, 1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Successors(0, 1) = %v", got)
	}
	if got := p.Successors(2, 4); got != nil {
		t.Fatalf("Successors(2) = %v", got)
	}
	if got := p.HotSet(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("HotSet(2) = %v", got)
	}
	if got := p.UniqueBlocks(); got != 3 {
		t.Fatalf("UniqueBlocks = %d", got)
	}
}

func TestProfileReuseDistances(t *testing.T) {
	// Accesses: 0 1 2 0 — the reuse of 0 has stack distance 2 (blocks 1,2
	// touched in between); 3 cold accesses.
	p := BuildProfile([]int{0, 1, 2, 0}, 3)
	if p.Reuse.Cold != 3 {
		t.Fatalf("cold = %d", p.Reuse.Cold)
	}
	// distance 2 → bucket bits.Len(2) = 2.
	if p.Reuse.Reuses() != 1 || len(p.Reuse.Buckets) != 3 || p.Reuse.Buckets[2] != 1 {
		t.Fatalf("reuse hist = %+v", p.Reuse)
	}

	// Immediate re-access: distance 0 → bucket 0.
	p = BuildProfile([]int{5, 5}, 8)
	if p.Reuse.Buckets[0] != 1 || p.Reuse.Cold != 1 {
		t.Fatalf("reuse hist = %+v", p.Reuse)
	}
}

func TestProfileSkipsOutOfRange(t *testing.T) {
	p := BuildProfile([]int{0, 99, -3, 1}, 2)
	if p.Accesses != 2 || p.Heat[0] != 1 || p.Heat[1] != 1 {
		t.Fatalf("profile = %+v", p)
	}
	// 99 and -3 are dropped, so the observed transition is 0→1.
	if p.Next[0][1] != 1 {
		t.Fatalf("transitions = %v", p.Next)
	}
}

func TestSummary(t *testing.T) {
	s := BuildProfile([]int{0, 1, 0, 1, 0, 2}, 3).Summary(2)
	if s.Blocks != 3 || s.Accesses != 6 || s.UniqueBlocks != 3 || s.Transitions != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Hot) != 2 || s.Hot[0] != (BlockHeat{Block: 0, Count: 3}) {
		t.Fatalf("hot = %+v", s.Hot)
	}
}

func TestRecorderWrapAround(t *testing.T) {
	r := NewRecorder(4)
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for i := 0; i < 3; i++ {
		r.Record(i)
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("partial snapshot = %v", got)
	}
	for i := 3; i < 10; i++ {
		r.Record(i)
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, []int{6, 7, 8, 9}) {
		t.Fatalf("wrapped snapshot = %v", got)
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

// TestRecorderConcurrent is the race-detector proof that Record/Snapshot
// need no locks.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(g*1000 + i)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8000 || r.Len() != 256 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
	for _, b := range r.Snapshot() {
		if b < 0 || b >= 8000 {
			t.Fatalf("torn value %d", b)
		}
	}
}
