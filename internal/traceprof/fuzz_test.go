package traceprof

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceParse guards the trace parser, which accepts operator-supplied
// files (loadgen -tracefile, POST /train bodies): hostile input must error,
// never panic, and anything accepted must survive a write/re-parse round
// trip and profile cleanly.
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte("codecomp-trace v1 image=gcc blocks=10\n0\n1\n9\n"))
	f.Add([]byte("codecomp-trace v1\n3\n3\n2\n"))
	f.Add([]byte("codecomp-trace v1 blocks=4\n# hot loop\n0\n\n1\n"))
	f.Add([]byte("codecomp-trace v2 blocks=4\n0\n"))
	f.Add([]byte("codecomp-trace v1 blocks=99999999999\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of parsed trace: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
		if back.Blocks != tr.Blocks || !reflect.DeepEqual(back.Accesses, tr.Accesses) {
			t.Fatalf("round trip changed trace: %+v != %+v", back, tr)
		}
		p := tr.Profile()
		if int(p.Accesses) != len(tr.Accesses) {
			t.Fatalf("profile counted %d of %d accesses", p.Accesses, len(tr.Accesses))
		}
	})
}
