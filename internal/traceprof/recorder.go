package traceprof

import "sync/atomic"

// Recorder is a bounded, lock-free ring buffer of block accesses — the live
// trace capture that sits on romserver's demand-fetch path. Record is one
// atomic fetch-add plus one atomic store, so the hot path pays nanoseconds
// whether or not anyone ever trains a profile from the ring.
//
// Snapshot is best-effort under concurrent recording: a writer that laps
// the reader can tear the oldest few entries, which only perturbs a
// statistical profile, never corrupts it (every slot is a whole int64).
type Recorder struct {
	slots []atomic.Int64
	next  atomic.Uint64
}

// NewRecorder returns a ring holding the last n accesses (n <= 0 defaults
// to 65536).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 65536
	}
	return &Recorder{slots: make([]atomic.Int64, n)}
}

// Record appends one block access, overwriting the oldest when full.
func (r *Recorder) Record(block int) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(int64(block))
}

// Total is the number of accesses ever recorded (including overwritten
// ones).
func (r *Recorder) Total() int64 { return int64(r.next.Load()) }

// Len is the number of accesses currently held.
func (r *Recorder) Len() int {
	if t := r.Total(); t < int64(len(r.slots)) {
		return int(t)
	}
	return len(r.slots)
}

// Snapshot returns the held accesses, oldest first.
func (r *Recorder) Snapshot() []int {
	total := r.next.Load()
	n := uint64(len(r.slots))
	out := make([]int, 0, r.Len())
	if total <= n {
		for i := uint64(0); i < total; i++ {
			out = append(out, int(r.slots[i].Load()))
		}
		return out
	}
	for i := total; i < total+n; i++ {
		out = append(out, int(r.slots[i%n].Load()))
	}
	return out
}
