// Package traceprof turns block-access traces into access-pattern profiles.
//
// The serving layer (internal/romserver) decompresses cache blocks on
// demand; how well it hides that latency depends entirely on the access
// pattern. Ozturk et al. (access-pattern-based code compression) show the
// pattern is exploitable: block heat is heavily skewed and the next block
// fetched is highly predictable from the current one. This package captures
// both facts from a trace:
//
//   - Heat: per-block demand counts (who is hot, who is cold);
//   - Next: the first-order Markov transition table between consecutive
//     distinct block accesses (what usually comes after block i);
//   - Reuse: an LRU stack-distance histogram (how big a cache must be for
//     a reuse to still hit).
//
// A Profile compiles into prefetch policies in internal/policy. Traces come
// from the live recorder in romserver (Recorder, this package), from
// loadgen's -tracefile output, or from any text in the codecomp-trace
// format below.
//
// # Trace text format
//
//	codecomp-trace v1 image=gcc-samc blocks=940
//	12
//	13
//	# comments and blank lines are skipped
//	40
//
// The header's blocks=N field bounds the indices; image= is optional
// documentation. One decimal block index per line, in access order.
package traceprof

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// maxBlocks bounds the block count so a hostile header or index cannot make
// the profiler allocate per-block state for 2^60 blocks. 2^22 32-byte
// blocks is a 128 MiB image — far beyond any embedded ROM we serve.
const maxBlocks = 1 << 22

// Trace is one block-access trace: the sequence of demand block indices an
// image served, in order.
type Trace struct {
	// Image is the image name the trace was recorded against (optional).
	Image string
	// Blocks is the image's block count; every access is in [0, Blocks).
	Blocks int
	// Accesses is the block index sequence.
	Accesses []int
}

// Parse reads a codecomp-trace v1 text stream. Indices outside
// [0, blocks) are errors, as is a missing or malformed header. When the
// header omits blocks=, the count is inferred as max(index)+1.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("traceprof: %w", err)
		}
		return nil, fmt.Errorf("traceprof: empty trace")
	}
	t := &Trace{}
	fields := strings.Fields(sc.Text())
	if len(fields) < 2 || fields[0] != "codecomp-trace" || fields[1] != "v1" {
		return nil, fmt.Errorf("traceprof: bad header %q", sc.Text())
	}
	declared := false
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("traceprof: bad header field %q", f)
		}
		switch key {
		case "image":
			t.Image = val
		case "blocks":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > maxBlocks {
				return nil, fmt.Errorf("traceprof: bad blocks=%q", val)
			}
			t.Blocks = n
			declared = true
		default:
			// Unknown fields are ignored so v1 readers survive v1.x writers.
		}
	}
	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		b, err := strconv.Atoi(s)
		if err != nil || b < 0 || b >= maxBlocks {
			return nil, fmt.Errorf("traceprof: line %d: bad block index %q", line, s)
		}
		if declared && b >= t.Blocks {
			return nil, fmt.Errorf("traceprof: line %d: block %d out of range [0,%d)", line, b, t.Blocks)
		}
		if !declared && b >= t.Blocks {
			t.Blocks = b + 1
		}
		t.Accesses = append(t.Accesses, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceprof: %w", err)
	}
	return t, nil
}

// WriteTo writes the trace in the text format Parse reads.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	hdr := "codecomp-trace v1"
	if t.Image != "" {
		hdr += " image=" + t.Image
	}
	hdr += fmt.Sprintf(" blocks=%d\n", t.Blocks)
	if err := count(bw.WriteString(hdr)); err != nil {
		return n, err
	}
	for _, b := range t.Accesses {
		if err := count(bw.WriteString(strconv.Itoa(b))); err != nil {
			return n, err
		}
		if err := count(bw.WriteString("\n")); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Profile builds the access-pattern profile of the trace.
func (t *Trace) Profile() *Profile { return BuildProfile(t.Accesses, t.Blocks) }

// ReuseHist is an LRU stack-distance histogram. A reuse at distance d hits
// any fully-associative LRU cache holding more than d blocks, so the
// cumulative histogram is the hit-ratio-vs-capacity curve of the trace.
type ReuseHist struct {
	// Cold counts first-ever accesses (infinite distance).
	Cold int64 `json:"cold"`
	// Buckets[i] counts reuses whose stack distance d (distinct blocks
	// touched since the previous access of the same block) has
	// bits.Len(d) == i: bucket 0 is d=0, bucket 1 is d=1, bucket 2 is
	// d in [2,4), bucket 3 is d in [4,8), and so on.
	Buckets []int64 `json:"buckets"`
}

func (h *ReuseHist) add(dist int) {
	idx := bits.Len(uint(dist))
	for len(h.Buckets) <= idx {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[idx]++
}

// Reuses is the total number of non-cold accesses counted.
func (h ReuseHist) Reuses() int64 {
	var n int64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Profile is the compiled access-pattern statistics of one trace.
type Profile struct {
	// Blocks is the image block count the profile covers.
	Blocks int `json:"blocks"`
	// Accesses is the trace length used for training.
	Accesses int64 `json:"accesses"`
	// Heat[i] counts demand accesses of block i.
	Heat []int64 `json:"heat"`
	// Next[i][j] counts transitions from block i to a different block j
	// between consecutive accesses — the first-order Markov table.
	Next []map[int]int64 `json:"next"`
	// Reuse is the LRU stack-distance histogram.
	Reuse ReuseHist `json:"reuse"`
}

// BuildProfile computes a Profile from a block-access sequence. Accesses
// outside [0, blocks) are skipped; blocks <= 0 infers the count from the
// trace.
func BuildProfile(accesses []int, blocks int) *Profile {
	if blocks <= 0 {
		for _, b := range accesses {
			if b >= blocks {
				blocks = b + 1
			}
		}
	}
	if blocks < 0 || blocks > maxBlocks {
		blocks = 0
	}
	p := &Profile{
		Blocks: blocks,
		Heat:   make([]int64, blocks),
		Next:   make([]map[int]int64, blocks),
	}
	// Fenwick tree over trace positions: a 1 marks the current last-access
	// position of some block, so the count of ones strictly between two
	// positions is exactly the number of distinct blocks touched in between
	// — the LRU stack distance, in O(log n) per access.
	fen := newFenwick(len(accesses))
	lastPos := make([]int, blocks)
	for i := range lastPos {
		lastPos[i] = -1
	}
	prev := -1
	pos := 0
	for _, b := range accesses {
		if b < 0 || b >= blocks {
			continue
		}
		p.Accesses++
		p.Heat[b]++
		if prev >= 0 && prev != b {
			if p.Next[prev] == nil {
				p.Next[prev] = make(map[int]int64)
			}
			p.Next[prev][b]++
		}
		prev = b
		if lp := lastPos[b]; lp >= 0 {
			p.Reuse.add(fen.sum(pos) - fen.sum(lp+1))
			fen.add(lp+1, -1)
		} else {
			p.Reuse.Cold++
		}
		fen.add(pos+1, 1)
		lastPos[b] = pos
		pos++
	}
	return p
}

// UniqueBlocks is the number of blocks the trace ever touched — the
// working-set size.
func (p *Profile) UniqueBlocks() int {
	n := 0
	for _, h := range p.Heat {
		if h > 0 {
			n++
		}
	}
	return n
}

// HotSet returns the n hottest blocks, hottest first (ties broken by lower
// index). Blocks never accessed are excluded even if n exceeds the working
// set.
func (p *Profile) HotSet(n int) []int {
	idx := make([]int, 0, len(p.Heat))
	for b, h := range p.Heat {
		if h > 0 {
			idx = append(idx, b)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		if p.Heat[idx[i]] != p.Heat[idx[j]] {
			return p.Heat[idx[i]] > p.Heat[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

// Successors returns block i's top-k most likely next blocks, most likely
// first (ties broken by lower index).
func (p *Profile) Successors(i, k int) []int {
	if i < 0 || i >= len(p.Next) || len(p.Next[i]) == 0 || k <= 0 {
		return nil
	}
	succ := make([]int, 0, len(p.Next[i]))
	for b := range p.Next[i] {
		succ = append(succ, b)
	}
	sort.Slice(succ, func(a, b int) bool {
		if p.Next[i][succ[a]] != p.Next[i][succ[b]] {
			return p.Next[i][succ[a]] > p.Next[i][succ[b]]
		}
		return succ[a] < succ[b]
	})
	if k < len(succ) {
		succ = succ[:k]
	}
	return succ
}

// BlockHeat is one row of a profile summary's hot list.
type BlockHeat struct {
	Block int   `json:"block"`
	Count int64 `json:"count"`
}

// Summary is the JSON-friendly digest of a Profile: everything an operator
// wants from /profile without shipping the full transition table.
type Summary struct {
	Blocks       int         `json:"blocks"`
	Accesses     int64       `json:"accesses"`
	UniqueBlocks int         `json:"unique_blocks"`
	Transitions  int         `json:"transitions"`
	Hot          []BlockHeat `json:"hot"`
	Reuse        ReuseHist   `json:"reuse"`
}

// Summary digests the profile, listing the topHot hottest blocks.
func (p *Profile) Summary(topHot int) Summary {
	s := Summary{
		Blocks:       p.Blocks,
		Accesses:     p.Accesses,
		UniqueBlocks: p.UniqueBlocks(),
		Reuse:        p.Reuse,
	}
	for _, m := range p.Next {
		s.Transitions += len(m)
	}
	for _, b := range p.HotSet(topHot) {
		s.Hot = append(s.Hot, BlockHeat{Block: b, Count: p.Heat[b]})
	}
	return s
}

// fenwick is a 1-based binary indexed tree of int counts.
type fenwick []int

func newFenwick(n int) fenwick { return make(fenwick, n+1) }

// add adds delta at 1-based position i.
func (f fenwick) add(i, delta int) {
	for ; i < len(f); i += i & -i {
		f[i] += delta
	}
}

// sum returns the prefix sum of positions [1, i].
func (f fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += f[i]
	}
	return s
}
