package huffman

import (
	"testing"

	"codecomp/internal/bitio"
)

// FuzzHuffmanDecodeFast differentially tests the table-driven decoder
// against the bit-serial one: for an arbitrary code (derived from fuzzed
// lengths) and an arbitrary bit stream — valid or hostile — DecodeFast must
// return the same symbol or the same error as Decode and leave the reader at
// the same bit position, step after step until the stream runs out.
func FuzzHuffmanDecodeFast(f *testing.F) {
	f.Add([]byte{2, 2, 2, 2}, []byte{0x1b, 0x00})
	f.Add([]byte{1, 2, 3, 3}, []byte{0xff, 0xff, 0xff})
	// Spill-path seed: code longer than lutBits.
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 12}, []byte{0xff, 0xfe, 0x01, 0x80})
	f.Add([]byte{}, []byte{0xaa})
	f.Add([]byte{4}, []byte{})
	f.Fuzz(func(t *testing.T, rawLens, stream []byte) {
		if len(rawLens) > 64 {
			rawLens = rawLens[:64]
		}
		lens := make([]uint8, len(rawLens))
		for i, b := range rawLens {
			lens[i] = b % (MaxBits + 1)
		}
		tbl, err := New(lens)
		if err != nil {
			return // over-subscribed code; nothing to compare
		}
		slow := bitio.NewReader(stream)
		fast := bitio.NewReader(stream)
		for step := 0; ; step++ {
			sSym, sErr := tbl.Decode(slow)
			fSym, fErr := tbl.DecodeFast(fast)
			if sErr != fErr {
				t.Fatalf("step %d: Decode err %v, DecodeFast err %v", step, sErr, fErr)
			}
			if sErr == nil && sSym != fSym {
				t.Fatalf("step %d: Decode sym %d, DecodeFast sym %d", step, sSym, fSym)
			}
			if slow.BitPos() != fast.BitPos() {
				t.Fatalf("step %d: Decode at bit %d, DecodeFast at bit %d (err %v)",
					step, slow.BitPos(), fast.BitPos(), sErr)
			}
			if sErr != nil {
				return // both failed identically; stream exhausted or corrupt
			}
		}
	})
}
