// Package huffman implements canonical, length-limited Huffman coding over
// arbitrary integer alphabets.
//
// It is the entropy-coding substrate for the SADC stream coder (§4 of the
// paper encodes all compressed streams with Huffman codes), for the Kozuch &
// Wolfe byte-Huffman baseline, and for the gzip-class DEFLATE baseline.
// Codes are canonical so only the code lengths need to be stored alongside
// the compressed data; decoding is table-free and uses the canonical
// first-code recurrence.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"codecomp/internal/bitio"
)

// MaxBits is the default maximum code length. 15 matches DEFLATE and keeps
// decoder state small, which matters for a hardware table decoder.
const MaxBits = 15

// lutBits is the first-level lookup width of the table decoder: one peek of
// lutBits resolves every code up to that length in a single table hit,
// spilling to the canonical walk for longer codes. 10 bits covers the vast
// majority of symbols of a skewed code (the frequent ones are short) while
// keeping the table at 1<<10 entries — the same first-level/overflow split
// flate and zstd decoders use.
const lutBits = 10

// Sentinel decode errors. They carry no position so the hot decode loops
// never touch fmt; callers that want context wrap them at the boundary
// (e.g. "sadc: token 3 of block 7: %w").
var (
	// ErrInvalidCode marks a bit pattern outside the canonical code space.
	ErrInvalidCode = errors.New("huffman: invalid code")
	// ErrCodeTooLong marks a prefix that is no codeword even at the table's
	// maximum code length.
	ErrCodeTooLong = errors.New("huffman: code longer than max length")
)

// Code describes the canonical codeword assigned to one symbol.
type Code struct {
	Bits uint32 // codeword, right-aligned
	Len  uint8  // length in bits; 0 means the symbol does not occur
}

// Table holds a canonical Huffman code for an alphabet of n symbols.
type Table struct {
	Codes []Code
	// decoding acceleration: for each length l, firstCode[l] is the first
	// canonical codeword of that length and firstSym[l] the index into syms
	// of its symbol.
	firstCode [MaxBits + 2]uint32
	firstSym  [MaxBits + 2]int32
	syms      []int32 // symbols sorted by (len, symbol)
	maxLen    uint8

	// First-level lookup table: lut[next tableBits of the stream] packs
	// symbol<<8 | codeLen for every code of length ≤ tableBits (all
	// entries sharing that prefix point at the same symbol). A zero entry
	// means the prefix either extends into a longer code or is invalid;
	// both spill to the canonical walk.
	tableBits uint8
	lut       []uint32
}

type hNode struct {
	freq        uint64
	sym         int32 // -1 for internal
	left, right int32 // indices into node pool
}

type hHeap struct {
	nodes []hNode
	order []int32
}

func (h *hHeap) Len() int { return len(h.order) }
func (h *hHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.sym < b.sym // deterministic tie-break
}
func (h *hHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *hHeap) Push(x any)    { h.order = append(h.order, x.(int32)) }
func (h *hHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// Lengths computes length-limited Huffman code lengths for the given symbol
// frequencies. Symbols with zero frequency get length 0. maxBits must be at
// least ceil(log2(#nonzero symbols)).
func Lengths(freq []uint64, maxBits uint8) ([]uint8, error) {
	n := len(freq)
	lens := make([]uint8, n)
	nonzero := 0
	last := -1
	for i, f := range freq {
		if f > 0 {
			nonzero++
			last = i
		}
	}
	switch nonzero {
	case 0:
		return lens, nil
	case 1:
		lens[last] = 1
		return lens, nil
	}
	if need := ceilLog2(nonzero); int(maxBits) < need {
		return nil, fmt.Errorf("huffman: maxBits %d too small for %d symbols", maxBits, nonzero)
	}

	h := &hHeap{nodes: make([]hNode, 0, 2*nonzero)}
	for i, f := range freq {
		if f > 0 {
			h.nodes = append(h.nodes, hNode{freq: f, sym: int32(i), left: -1, right: -1})
			h.order = append(h.order, int32(len(h.nodes)-1))
		}
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int32)
		b := heap.Pop(h).(int32)
		h.nodes = append(h.nodes, hNode{
			freq: h.nodes[a].freq + h.nodes[b].freq,
			sym:  -1, left: a, right: b,
		})
		heap.Push(h, int32(len(h.nodes)-1))
	}
	root := h.order[0]

	// Depth-first traversal to assign raw lengths.
	type frame struct {
		node  int32
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[f.node]
		if nd.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			lens[nd.sym] = d
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}

	limitLengths(lens, maxBits)
	return lens, nil
}

// limitLengths enforces the maxBits cap using the standard Kraft-sum repair:
// overlong codes are clamped, then the length multiset is adjusted until the
// Kraft inequality holds with equality.
func limitLengths(lens []uint8, maxBits uint8) {
	var over bool
	for _, l := range lens {
		if l > maxBits {
			over = true
			break
		}
	}
	if !over {
		return
	}
	count := make([]int, maxBits+1)
	for i, l := range lens {
		if l == 0 {
			continue
		}
		if l > maxBits {
			lens[i] = maxBits
		}
		count[lens[i]]++
	}
	// Kraft sum measured in units of 2^-maxBits.
	total := uint64(0)
	for l := uint8(1); l <= maxBits; l++ {
		total += uint64(count[l]) << (maxBits - l)
	}
	limit := uint64(1) << maxBits
	for total > limit {
		// Find a code at the deepest overfull level and demote one code from
		// the shallowest level that has spare capacity, zlib-style: take one
		// codeword of length maxBits and pair it with a promoted shorter one.
		l := maxBits - 1
		for count[l] == 0 {
			l--
		}
		count[l]--
		count[l+1] += 2
		count[maxBits]--
		total -= 1 // net effect: one leaf moved deeper by one level
		// Recompute exactly to avoid drift (cheap: maxBits iterations).
		total = 0
		for k := uint8(1); k <= maxBits; k++ {
			total += uint64(count[k]) << (maxBits - k)
		}
	}
	// Reassign lengths canonically: sort symbols by (old length, symbol) and
	// dole out the adjusted length counts shortest-first to the most frequent
	// (shortest-old-length) symbols.
	type symLen struct {
		sym int32
		l   uint8
	}
	var syms []symLen
	for i, l := range lens {
		if l > 0 {
			syms = append(syms, symLen{int32(i), l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	idx := 0
	for l := uint8(1); l <= maxBits; l++ {
		for k := 0; k < count[l]; k++ {
			lens[syms[idx].sym] = l
			idx++
		}
	}
}

// New builds a canonical table from per-symbol code lengths.
func New(lens []uint8) (*Table, error) {
	t := &Table{Codes: make([]Code, len(lens))}
	var count [MaxBits + 2]int32
	for i, l := range lens {
		if l > MaxBits {
			return nil, fmt.Errorf("huffman: symbol %d length %d exceeds max %d", i, l, MaxBits)
		}
		if l > 0 {
			count[l]++
			if l > t.maxLen {
				t.maxLen = l
			}
		}
	}
	// Kraft check.
	var kraft uint64
	for l := uint8(1); l <= MaxBits; l++ {
		kraft += uint64(count[l]) << (MaxBits - l)
	}
	if kraft > 1<<MaxBits {
		return nil, fmt.Errorf("huffman: over-subscribed code (kraft %d)", kraft)
	}
	// Canonical first codes.
	var code uint32
	var symBase int32
	for l := uint8(1); l <= t.maxLen; l++ {
		code <<= 1
		t.firstCode[l] = code
		t.firstSym[l] = symBase
		code += uint32(count[l])
		symBase += count[l]
	}
	// Symbols sorted by (len, symbol).
	t.syms = make([]int32, 0, symBase)
	for l := uint8(1); l <= t.maxLen; l++ {
		for i, ln := range lens {
			if ln == l {
				t.syms = append(t.syms, int32(i))
			}
		}
	}
	// Assign per-symbol codes.
	next := t.firstCode
	for _, s := range t.syms {
		l := lens[s]
		t.Codes[s] = Code{Bits: next[l], Len: l}
		next[l]++
	}
	t.buildLUT()
	return t, nil
}

// buildLUT fills the first-level decode table: every code of length
// l ≤ tableBits owns the 2^(tableBits-l) entries sharing its prefix.
func (t *Table) buildLUT() {
	t.tableBits = t.maxLen
	if t.tableBits > lutBits {
		t.tableBits = lutBits
	}
	t.lut = make([]uint32, 1<<t.tableBits)
	for sym, c := range t.Codes {
		if c.Len == 0 || c.Len > t.tableBits {
			continue
		}
		base := c.Bits << (t.tableBits - c.Len)
		span := uint32(1) << (t.tableBits - c.Len)
		e := uint32(sym)<<8 | uint32(c.Len)
		for i := uint32(0); i < span; i++ {
			t.lut[base+i] = e
		}
	}
}

// Build computes lengths from frequencies and constructs the table.
func Build(freq []uint64, maxBits uint8) (*Table, error) {
	lens, err := Lengths(freq, maxBits)
	if err != nil {
		return nil, err
	}
	return New(lens)
}

// Encode appends the codeword for sym to w.
func (t *Table) Encode(w *bitio.Writer, sym int) error {
	if sym < 0 || sym >= len(t.Codes) {
		return fmt.Errorf("huffman: symbol %d out of range [0,%d)", sym, len(t.Codes))
	}
	c := t.Codes[sym]
	if c.Len == 0 {
		return fmt.Errorf("huffman: symbol %d has no code", sym)
	}
	w.WriteBits(uint64(c.Bits), uint(c.Len))
	return nil
}

// Decode consumes one codeword from r and returns its symbol.
func (t *Table) Decode(r *bitio.Reader) (int, error) {
	var code uint32
	for l := uint8(1); l <= t.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		// Codes of length l occupy [firstCode[l], firstCode[l]+count).
		// firstCode of the next populated length, shifted, bounds them.
		next := t.boundAt(l)
		if code < next {
			if code < t.firstCode[l] {
				return 0, ErrInvalidCode
			}
			return int(t.syms[t.firstSym[l]+int32(code-t.firstCode[l])]), nil
		}
	}
	return 0, ErrCodeTooLong
}

// DecodeFast consumes one codeword from r via the first-level lookup table,
// spilling to the canonical walk for codes longer than tableBits. It returns
// exactly the same (symbol, error) and leaves r at exactly the same bit
// position as Decode on every stream, valid or not.
func (t *Table) DecodeFast(r *bitio.Reader) (int, error) {
	if e := t.lut[r.PeekBits(uint(t.tableBits))]; e != 0 {
		// PeekBits zero-pads past the end of the stream, so a truncated code
		// can still hit a table entry; Consume reports the EOF a bit-serial
		// decode would have returned.
		if err := r.Consume(uint(e & 0xff)); err != nil {
			return 0, err
		}
		return int(e >> 8), nil
	}
	return t.decodeSpill(r)
}

// decodeSpill resolves codes the first-level table cannot: codes longer than
// tableBits, invalid prefixes, and truncated streams. It repeats the
// canonical walk of Decode over a single peek so every outcome — symbol,
// ErrInvalidCode, ErrCodeTooLong, or EOF via Consume — consumes exactly the
// bits the bit-serial path would have.
func (t *Table) decodeSpill(r *bitio.Reader) (int, error) {
	peeked := uint32(r.PeekBits(uint(t.maxLen)))
	for l := uint8(1); l <= t.maxLen; l++ {
		code := peeked >> (t.maxLen - l)
		if code < t.boundAt(l) {
			if err := r.Consume(uint(l)); err != nil {
				return 0, err
			}
			if code < t.firstCode[l] {
				return 0, ErrInvalidCode
			}
			return int(t.syms[t.firstSym[l]+int32(code-t.firstCode[l])]), nil
		}
	}
	if err := r.Consume(uint(t.maxLen)); err != nil {
		return 0, err
	}
	return 0, ErrCodeTooLong
}

// boundAt returns one past the last valid codeword of length l.
func (t *Table) boundAt(l uint8) uint32 {
	var n uint32
	if l < t.maxLen {
		// firstCode[l+1] = (firstCode[l]+count[l]) << 1
		n = t.firstCode[l+1] >> 1
	} else {
		n = t.firstCode[l] + uint32(int32(len(t.syms))-t.firstSym[l])
	}
	return n
}

// BitLen returns the encoded length in bits of symbol sym, or 0 if absent.
func (t *Table) BitLen(sym int) int {
	if sym < 0 || sym >= len(t.Codes) {
		return 0
	}
	return int(t.Codes[sym].Len)
}

// NumSymbols returns the alphabet size the table was built over.
func (t *Table) NumSymbols() int { return len(t.Codes) }

// MaxLen returns the longest code length in use.
func (t *Table) MaxLen() uint8 { return t.maxLen }

// WriteLengths serializes the code lengths (4 bits per symbol when all fit
// in 15, which they do by construction) so a decoder can rebuild the table.
// The alphabet size itself is context the caller must carry.
func (t *Table) WriteLengths(w *bitio.Writer) {
	for _, c := range t.Codes {
		w.WriteBits(uint64(c.Len), 4)
	}
}

// ReadLengths reads n 4-bit code lengths and rebuilds a canonical table.
func ReadLengths(r *bitio.Reader, n int) (*Table, error) {
	lens := make([]uint8, n)
	for i := range lens {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, err
		}
		lens[i] = uint8(v)
	}
	return New(lens)
}

// TableBits returns the serialized table size in bits (4 bits per symbol).
func (t *Table) TableBits() int { return 4 * len(t.Codes) }

// EncodedBits returns the total encoded size in bits of a message with the
// given symbol frequencies under this table, ignoring symbols with no code.
func (t *Table) EncodedBits(freq []uint64) uint64 {
	var total uint64
	for s, f := range freq {
		if s < len(t.Codes) {
			total += f * uint64(t.Codes[s].Len)
		}
	}
	return total
}

func ceilLog2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
