package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codecomp/internal/bitio"
)

func roundTrip(t *testing.T, freq []uint64, msg []int, maxBits uint8) {
	t.Helper()
	tbl, err := Build(freq, maxBits)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w := bitio.NewWriter(len(msg))
	for _, s := range msg {
		if err := tbl.Encode(w, s); err != nil {
			t.Fatalf("Encode %d: %v", s, err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range msg {
		got, err := tbl.Decode(r)
		if err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripSimple(t *testing.T) {
	freq := []uint64{50, 20, 20, 5, 5}
	msg := []int{0, 1, 2, 3, 4, 0, 0, 1, 2, 4, 3, 0}
	roundTrip(t, freq, msg, MaxBits)
}

func TestSingleSymbol(t *testing.T) {
	freq := []uint64{0, 0, 7, 0}
	roundTrip(t, freq, []int{2, 2, 2, 2}, MaxBits)
	tbl, _ := Build(freq, MaxBits)
	if tbl.Codes[2].Len != 1 {
		t.Fatalf("single-symbol code length = %d, want 1", tbl.Codes[2].Len)
	}
}

func TestEmptyAlphabet(t *testing.T) {
	tbl, err := Build(make([]uint64, 8), MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tbl.Codes {
		if c.Len != 0 {
			t.Fatal("empty alphabet should assign no codes")
		}
	}
}

func TestOptimality(t *testing.T) {
	// A classic distribution: lengths must satisfy Kraft equality and
	// frequent symbols must not get longer codes than rare ones.
	freq := []uint64{45, 13, 12, 16, 9, 5}
	lens, err := Lengths(freq, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	var kraft float64
	for _, l := range lens {
		if l > 0 {
			kraft += 1 / float64(uint64(1)<<l)
		}
	}
	if kraft != 1.0 {
		t.Fatalf("kraft sum = %v, want 1.0", kraft)
	}
	for i := range freq {
		for j := range freq {
			if freq[i] > freq[j] && lens[i] > lens[j] {
				t.Errorf("freq[%d]=%d > freq[%d]=%d but len %d > %d",
					i, freq[i], j, freq[j], lens[i], lens[j])
			}
		}
	}
	// Expected total cost of the canonical Huffman code for this classic
	// example (CLRS): 45*1+13*4+12*3+16*3+9*4+5*4 = 224.
	var cost uint64
	for i, l := range lens {
		cost += freq[i] * uint64(l)
	}
	if cost != 224 {
		t.Fatalf("total cost = %d, want 224", cost)
	}
}

func TestLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; cap at 6 bits.
	freq := []uint64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	lens, err := Lengths(freq, 6)
	if err != nil {
		t.Fatal(err)
	}
	var kraft uint64
	for _, l := range lens {
		if l == 0 {
			t.Fatal("nonzero frequency got zero length")
		}
		if l > 6 {
			t.Fatalf("length %d exceeds limit 6", l)
		}
		kraft += uint64(1) << (6 - l)
	}
	if kraft > 1<<6 {
		t.Fatalf("over-subscribed: kraft %d", kraft)
	}
	msg := make([]int, 0, 64)
	for s := range freq {
		for k := 0; k < 3; k++ {
			msg = append(msg, s)
		}
	}
	roundTrip(t, freq, msg, 6)
}

func TestMaxBitsTooSmall(t *testing.T) {
	freq := make([]uint64, 16)
	for i := range freq {
		freq[i] = 1
	}
	if _, err := Lengths(freq, 3); err == nil {
		t.Fatal("expected error: 16 symbols cannot fit in 3-bit codes")
	}
}

func TestTableSerialization(t *testing.T) {
	freq := []uint64{9, 0, 4, 1, 1, 0, 22, 3}
	tbl, err := Build(freq, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(16)
	tbl.WriteLengths(w)
	if int(w.BitLen()) != tbl.TableBits() {
		t.Fatalf("serialized %d bits, TableBits says %d", w.BitLen(), tbl.TableBits())
	}
	r := bitio.NewReader(w.Bytes())
	tbl2, err := ReadLengths(r, len(freq))
	if err != nil {
		t.Fatal(err)
	}
	for s := range freq {
		if tbl.Codes[s] != tbl2.Codes[s] {
			t.Fatalf("symbol %d: %+v != %+v", s, tbl.Codes[s], tbl2.Codes[s])
		}
	}
}

func TestEncodedBits(t *testing.T) {
	freq := []uint64{10, 10, 10, 10}
	tbl, _ := Build(freq, MaxBits)
	if got := tbl.EncodedBits(freq); got != 80 {
		t.Fatalf("EncodedBits = %d, want 80 (uniform 4-symbol = 2 bits each)", got)
	}
}

func TestEncodeErrors(t *testing.T) {
	tbl, _ := Build([]uint64{5, 0, 5}, MaxBits)
	w := bitio.NewWriter(4)
	if err := tbl.Encode(w, 1); err == nil {
		t.Fatal("encoding an absent symbol should fail")
	}
	if err := tbl.Encode(w, 99); err == nil {
		t.Fatal("encoding out-of-range symbol should fail")
	}
}

func TestDecodeInvalid(t *testing.T) {
	// Single-symbol table: the codeword is "0"; a stream starting with 1 is
	// invalid.
	tbl, _ := Build([]uint64{3}, MaxBits)
	r := bitio.NewReader([]byte{0xFF})
	if _, err := tbl.Decode(r); err == nil {
		t.Fatal("expected invalid-code error")
	}
}

// Property: random frequency vectors always yield decodable prefix codes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		freq := make([]uint64, n)
		for i := range freq {
			if rng.Intn(3) > 0 {
				freq[i] = uint64(rng.Intn(10000))
			}
		}
		nonzero := []int{}
		for s, f := range freq {
			if f > 0 {
				nonzero = append(nonzero, s)
			}
		}
		tbl, err := Build(freq, MaxBits)
		if err != nil {
			return false
		}
		if len(nonzero) == 0 {
			return true
		}
		msg := make([]int, 500)
		for i := range msg {
			msg[i] = nonzero[rng.Intn(len(nonzero))]
		}
		w := bitio.NewWriter(1024)
		for _, s := range msg {
			if err := tbl.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		for _, want := range msg {
			got, err := tbl.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Kraft inequality holds for every generated code.
func TestQuickKraft(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := make([]uint64, 2+rng.Intn(256))
		for i := range freq {
			freq[i] = uint64(rng.Intn(1 << uint(rng.Intn(20))))
		}
		lens, err := Lengths(freq, MaxBits)
		if err != nil {
			return false
		}
		var kraft uint64
		for _, l := range lens {
			if l > 0 {
				kraft += uint64(1) << (MaxBits - l)
			}
		}
		return kraft <= 1<<MaxBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	freq := make([]uint64, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range freq {
		freq[i] = uint64(rng.Intn(1000) + 1)
	}
	tbl, _ := Build(freq, MaxBits)
	w := bitio.NewWriter(1 << 16)
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<19 {
			w.Reset()
		}
		_ = tbl.Encode(w, i&255)
	}
}

// benchStream builds a 4096-symbol coded stream for the decode benchmarks.
func benchStream(b *testing.B) (*Table, []byte) {
	b.Helper()
	freq := make([]uint64, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range freq {
		freq[i] = uint64(rng.Intn(1000) + 1)
	}
	tbl, _ := Build(freq, MaxBits)
	w := bitio.NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		_ = tbl.Encode(w, rng.Intn(256))
	}
	return tbl, w.Bytes()
}

// BenchmarkDecode is the production decode path (DecodeFast: first-level
// LUT with spill to the canonical walk).
func BenchmarkDecode(b *testing.B) {
	tbl, data := benchStream(b)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	var r bitio.Reader
	r.Reset(data)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r.Reset(data)
		}
		if _, err := tbl.DecodeFast(&r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeSerial is the bit-serial reference decoder DecodeFast is
// measured against.
func BenchmarkDecodeSerial(b *testing.B) {
	tbl, data := benchStream(b)
	b.SetBytes(1)
	b.ResetTimer()
	var r bitio.Reader
	r.Reset(data)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r.Reset(data)
		}
		if _, err := tbl.Decode(&r); err != nil {
			b.Fatal(err)
		}
	}
}
