// Package lzw reimplements the UNIX compress(1) algorithm — adaptive LZW
// with variable-width codes (9 to 16 bits) and block mode (a CLEAR code that
// resets the dictionary when compression degrades). It is one of the two
// file-oriented baselines of the paper's Figures 7 and 8.
//
// The bit-packing order and header differ from .Z files (we pack MSB-first
// and carry the original length), but the algorithm — and therefore the
// compression ratio — is the same. As the paper notes (§1), LZ-family
// pointers into earlier text make per-cache-block random access impossible,
// which is exactly why compress/gzip serve only as file-level yardsticks.
package lzw

import (
	"encoding/binary"
	"fmt"

	"codecomp/internal/bitio"
)

const (
	minWidth  = 9
	maxWidth  = 16
	clearCode = 256
	firstCode = 257
	maxCodes  = 1 << maxWidth
	// ratioWindow is how often (in input bytes) the encoder re-checks
	// whether a full dictionary is still paying off.
	ratioWindow = 8192
)

// Compress encodes data.
func Compress(data []byte) []byte {
	hdr := binary.BigEndian.AppendUint32(nil, uint32(len(data)))
	if len(data) == 0 {
		return hdr
	}
	w := bitio.NewWriter(len(data)/2 + 16)

	type pend struct {
		prefix int32
		c      byte
	}
	var (
		dict    map[int64]int32
		next    int32
		width   uint
		pending *pend
	)
	reset := func() {
		dict = make(map[int64]int32, 4096)
		next = firstCode
		width = minWidth
		pending = nil
	}
	key := func(prefix int32, c byte) int64 { return int64(prefix)<<8 | int64(c) }
	// addPending mirrors the decoder: exactly one dictionary entry is added
	// per emitted code (starting with the second), so code widths stay in
	// lockstep without the classic early-change hack.
	addPending := func() {
		if pending != nil && next < maxCodes {
			dict[key(pending.prefix, pending.c)] = next
			next++
			if next < maxCodes && next == 1<<width && width < maxWidth {
				width++
			}
		}
		pending = nil
	}
	reset()

	// Degradation check state for block mode.
	var inSinceCheck, outBitsSinceCheck int64
	var lastRatio float64

	cur := int32(data[0])
	for i := 1; i < len(data); i++ {
		c := data[i]
		if code, ok := dict[key(cur, c)]; ok {
			cur = code
			continue
		}
		w.WriteBits(uint64(cur), width)
		outBitsSinceCheck += int64(width)
		addPending()
		pending = &pend{cur, c}
		cur = int32(c)
		inSinceCheck += 1

		// Block mode: once the dictionary is full, watch the running ratio
		// and emit CLEAR when it degrades.
		if next >= maxCodes && inSinceCheck >= ratioWindow {
			ratio := float64(outBitsSinceCheck) / float64(8*inSinceCheck)
			if lastRatio > 0 && ratio > lastRatio {
				w.WriteBits(uint64(clearCode), width)
				reset()
				lastRatio = 0
			} else {
				lastRatio = ratio
			}
			inSinceCheck, outBitsSinceCheck = 0, 0
		}
	}
	w.WriteBits(uint64(cur), width)
	return w.AppendBytes(hdr)
}

// Decompress decodes a Compress output.
func Decompress(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("lzw: truncated header")
	}
	origLen := int(binary.BigEndian.Uint32(data))
	out := make([]byte, 0, origLen)
	if origLen == 0 {
		return out, nil
	}
	r := bitio.NewReader(data[4:])

	// Decoder dictionary: code → (prefix code, suffix byte); literals are
	// implicit.
	type entry struct {
		prefix int32
		c      byte
	}
	var (
		entries []entry
		next    int32
		width   uint
	)
	reset := func() {
		entries = entries[:0]
		next = firstCode
		width = minWidth
	}
	reset()

	var expand func(code int32, buf []byte) ([]byte, error)
	expand = func(code int32, buf []byte) ([]byte, error) {
		for code >= firstCode {
			e := entries[code-firstCode]
			buf = append(buf, e.c)
			code = e.prefix
		}
		if code < 0 || code > 255 || code == clearCode {
			return nil, fmt.Errorf("lzw: invalid code chain")
		}
		buf = append(buf, byte(code))
		// Reverse the suffix-first expansion.
		for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
		return buf, nil
	}
	firstByte := func(code int32) (byte, error) {
		for code >= firstCode {
			code = entries[code-firstCode].prefix
		}
		if code < 0 || code > 255 {
			return 0, fmt.Errorf("lzw: invalid code chain")
		}
		return byte(code), nil
	}

	var prev int32 = -1
	var scratch []byte
	for len(out) < origLen {
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, fmt.Errorf("lzw: truncated stream at %d/%d bytes", len(out), origLen)
		}
		code := int32(v)
		if code == clearCode {
			reset()
			prev = -1
			continue
		}
		limit := next
		if prev >= 0 {
			limit++ // the KwKwK case: code may reference the entry about to exist
		}
		if code >= limit {
			return nil, fmt.Errorf("lzw: code %d beyond dictionary size %d", code, next)
		}
		// Add the deferred entry for the previous code.
		if prev >= 0 && next < maxCodes {
			var fb byte
			if code == next {
				fb, err = firstByte(prev)
			} else {
				fb, err = firstByte(code)
			}
			if err != nil {
				return nil, err
			}
			entries = append(entries, entry{prev, fb})
			next++
			if next < maxCodes && next == 1<<width && width < maxWidth {
				width++
			}
		}
		scratch, err = expand(code, scratch[:0])
		if err != nil {
			return nil, err
		}
		out = append(out, scratch...)
		prev = code
	}
	if len(out) != origLen {
		return nil, fmt.Errorf("lzw: decoded %d bytes, header says %d", len(out), origLen)
	}
	return out, nil
}

// Ratio compresses data and returns compressed/original size.
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 1
	}
	return float64(len(Compress(data))) / float64(len(data))
}
