package lzw

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"codecomp/internal/synth"
)

func TestRoundTripSimple(t *testing.T) {
	cases := [][]byte{
		[]byte("TOBEORNOTTOBEORTOBEORNOT"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("abcdefghijklmnopqrstuvwxyz"),
		[]byte{0},
		[]byte{255, 255, 0, 0, 255},
		bytes.Repeat([]byte("abc"), 10000),
	}
	for i, data := range cases {
		got, err := Decompress(Compress(data))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip failed", i)
		}
	}
}

func TestEmpty(t *testing.T) {
	comp := Compress(nil)
	if len(comp) != 4 {
		t.Fatalf("empty compressed to %d bytes", len(comp))
	}
	got, err := Decompress(comp)
	if err != nil || len(got) != 0 {
		t.Fatal("empty round trip failed")
	}
}

func TestKwKwKCase(t *testing.T) {
	// The classic pathological pattern for LZW decoders.
	data := []byte("abababababababababababab")
	got, err := Decompress(Compress(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("KwKwK round trip failed: %v", err)
	}
}

func TestRepetitiveTextCompresses(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 2000))
	r := Ratio(data)
	if r > 0.2 {
		t.Fatalf("ratio %.3f on highly repetitive text", r)
	}
}

func TestRandomDataExpandsLittle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	rng.Read(data)
	r := Ratio(data)
	// 9→16-bit codes on incompressible bytes: bounded expansion.
	if r > 1.7 {
		t.Fatalf("ratio %.3f on random data", r)
	}
	got, err := Decompress(Compress(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("random-data round trip failed")
	}
}

func TestDictionaryResetPath(t *testing.T) {
	// Force the dictionary full + degradation path: a long compressible
	// prefix, then a statistically different section, repeated.
	rng := rand.New(rand.NewSource(2))
	var data []byte
	data = append(data, bytes.Repeat([]byte("abcdefgh"), 64*1024)...)
	chunk := make([]byte, 256*1024)
	rng.Read(chunk)
	data = append(data, chunk...)
	data = append(data, bytes.Repeat([]byte("zyxwvuts"), 64*1024)...)
	got, err := Decompress(Compress(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reset-path round trip failed")
	}
}

func TestCodeRatioOnCode(t *testing.T) {
	prof := synth.Profile{Name: "t", KB: 32, FP: 0.2, Reuse: 0.4, SmallImm: 0.7, CallDensity: 0.05, Seed: 7}
	text := synth.GenerateMIPS(prof).Text()
	r := Ratio(text)
	// UNIX compress lands around 0.5–0.65 on RISC code (paper Figure 7).
	if r < 0.3 || r > 0.8 {
		t.Fatalf("ratio %.3f on MIPS code, expected roughly 0.3–0.8", r)
	}
	got, err := Decompress(Compress(text))
	if err != nil || !bytes.Equal(got, text) {
		t.Fatal("code round trip failed")
	}
}

func TestTruncatedInput(t *testing.T) {
	data := Compress([]byte("hello hello hello hello"))
	if _, err := Decompress(data[:2]); err == nil {
		t.Fatal("truncated header must fail")
	}
	if _, err := Decompress(data[:5]); err == nil {
		t.Fatal("truncated stream must fail")
	}
}

// Property: Decompress ∘ Compress is the identity.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: structured (low-entropy) data never expands.
func TestQuickStructuredNeverExpands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4096 + rng.Intn(8192)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(8)) // 3 bits of entropy per byte
		}
		return len(Compress(data)) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	prof := synth.Profile{Name: "t", KB: 64, FP: 0.2, Reuse: 0.4, SmallImm: 0.7, CallDensity: 0.05, Seed: 7}
	text := synth.GenerateMIPS(prof).Text()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		Compress(text)
	}
}

func BenchmarkDecompress(b *testing.B) {
	prof := synth.Profile{Name: "t", KB: 64, FP: 0.2, Reuse: 0.4, SmallImm: 0.7, CallDensity: 0.05, Seed: 7}
	text := synth.GenerateMIPS(prof).Text()
	comp := Compress(text)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
