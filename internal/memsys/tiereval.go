package memsys

import (
	"container/list"
	"fmt"
)

// This file is the offline tiering-evaluation mode: where EvaluatePolicy
// scores prefetch policies by hit ratio, EvaluateTiering scores tier
// configurations by what a trace actually pays for its misses. Each block
// carries a decode cost (its length × its tier's per-byte decode cost, the
// tiering package's DecodeCosts), and the replay charges that cost on every
// miss of the block: a tiered image that keeps hot blocks in fast tiers
// pays near-raw latency for the bulk of the trace while cold blocks sit in
// the dense tiers. Scoring the same trace against a single-codec cost
// vector and a tiered one answers "does the tiered layout Pareto-dominate?"
// — lower mean decode latency at equal or better compression — without
// standing up a server.

// TieringConfig describes the modeled cache and the per-block decode costs
// of one candidate layout.
type TieringConfig struct {
	// CacheBlocks is the decompressed-block cache capacity in blocks.
	CacheBlocks int
	// BlockCostNs is each block's decode cost in nanoseconds, indexed by
	// block (length numBlocks). Produce it with TieredImage.DecodeCosts
	// for a tiered layout, or block length × one format's ns/byte for a
	// single-codec baseline.
	BlockCostNs []float64
}

// TieringStats scores one tier layout over one trace.
type TieringStats struct {
	// Accesses counts demand block accesses replayed.
	Accesses uint64 `json:"accesses"`
	// Misses counts accesses that had to decode (cold or evicted blocks).
	Misses uint64 `json:"misses"`
	// HitRatio is the cache hit fraction (identical across layouts at the
	// same geometry; reported for context).
	HitRatio float64 `json:"hit_ratio"`
	// TotalDecodeNs is the summed decode cost of every miss.
	TotalDecodeNs float64 `json:"total_decode_ns"`
	// MeanNsPerAccess is TotalDecodeNs amortized over all accesses — the
	// headline latency score (hits cost ~0).
	MeanNsPerAccess float64 `json:"mean_ns_per_access"`
	// MeanNsPerMiss is the average decode cost actually paid per miss.
	MeanNsPerMiss float64 `json:"mean_ns_per_miss"`
}

// EvaluateTiering replays a demand block-access trace through a
// fully-associative LRU cache of cfg.CacheBlocks blocks, charging
// cfg.BlockCostNs[b] for every miss of block b. Accesses outside
// [0, numBlocks) are errors; BlockCostNs must cover every block.
func EvaluateTiering(accesses []int, numBlocks int, cfg TieringConfig) (TieringStats, error) {
	if numBlocks <= 0 {
		return TieringStats{}, fmt.Errorf("memsys: numBlocks must be positive")
	}
	if cfg.CacheBlocks <= 0 {
		return TieringStats{}, fmt.Errorf("memsys: CacheBlocks must be positive")
	}
	if len(cfg.BlockCostNs) < numBlocks {
		return TieringStats{}, fmt.Errorf("memsys: %d block costs for %d blocks", len(cfg.BlockCostNs), numBlocks)
	}

	var st TieringStats
	entries := make(map[int]*list.Element, cfg.CacheBlocks)
	lru := list.New() // of int; front = most recently used
	for _, b := range accesses {
		if b < 0 || b >= numBlocks {
			return st, fmt.Errorf("memsys: access %d out of range [0,%d)", b, numBlocks)
		}
		st.Accesses++
		if el, ok := entries[b]; ok {
			lru.MoveToFront(el)
			continue
		}
		st.Misses++
		st.TotalDecodeNs += cfg.BlockCostNs[b]
		entries[b] = lru.PushFront(b)
		for lru.Len() > cfg.CacheBlocks {
			back := lru.Back()
			lru.Remove(back)
			delete(entries, back.Value.(int))
		}
	}
	if st.Accesses > 0 {
		st.HitRatio = float64(st.Accesses-st.Misses) / float64(st.Accesses)
		st.MeanNsPerAccess = st.TotalDecodeNs / float64(st.Accesses)
	}
	if st.Misses > 0 {
		st.MeanNsPerMiss = st.TotalDecodeNs / float64(st.Misses)
	}
	return st, nil
}
