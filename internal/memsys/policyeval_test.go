package memsys_test

import (
	"testing"

	"codecomp/internal/memsys"
	"codecomp/internal/policy"
	"codecomp/internal/synth"
	"codecomp/internal/traceprof"
)

func mustEval(t *testing.T, accesses []int, blocks int, pf policy.Prefetcher, cfg memsys.PolicyConfig) memsys.PolicyStats {
	t.Helper()
	st, err := memsys.EvaluatePolicy(accesses, blocks, pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEvaluatePolicyMechanics(t *testing.T) {
	// No prefetcher, capacity 2, trace 0 1 0 2 0: 0 survives (always
	// re-touched before eviction), 1 and 2 are cold misses.
	st := mustEval(t, []int{0, 1, 0, 2, 0}, 4, nil, memsys.PolicyConfig{CacheBlocks: 2})
	if st.Requests != 5 || st.DemandHits != 2 || st.DemandMisses != 3 || st.Decompressions != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 1 { // block 1 evicted when 2 arrives
		t.Fatalf("evictions = %d", st.Evictions)
	}

	// Sequential depth-1 prefetch fires on demand misses only, so the
	// scan alternates miss (0, 2) and prefetched hit (1, 3).
	st = mustEval(t, []int{0, 1, 2, 3}, 8, policy.NewSequential(1, 8), memsys.PolicyConfig{CacheBlocks: 8})
	if st.DemandMisses != 2 || st.DemandHits != 2 {
		t.Fatalf("sequential stats = %+v", st)
	}
	if st.PrefetchIssued != 2 || st.PrefetchUsed != 2 || st.PrefetchWasted != 0 {
		t.Fatalf("prefetch accounting = %+v", st)
	}
	if st.Accuracy() != 1 {
		t.Fatalf("accuracy = %v", st.Accuracy())
	}

	// A prefetch past the trace's use is wasted.
	st = mustEval(t, []int{0}, 8, policy.NewSequential(2, 8), memsys.PolicyConfig{CacheBlocks: 8})
	if st.PrefetchIssued != 2 || st.PrefetchUsed != 0 || st.PrefetchWasted != 2 {
		t.Fatalf("waste accounting = %+v", st)
	}

	// Pinned blocks always hit and are never evicted.
	st = mustEval(t, []int{7, 0, 1, 2, 3, 7}, 8, nil, memsys.PolicyConfig{CacheBlocks: 3, Pinned: []int{7}})
	if st.DemandHits != 2 { // both accesses of 7
		t.Fatalf("pinned stats = %+v", st)
	}

	// Errors.
	if _, err := memsys.EvaluatePolicy([]int{0}, 0, nil, memsys.PolicyConfig{CacheBlocks: 2}); err == nil {
		t.Fatal("numBlocks=0 accepted")
	}
	if _, err := memsys.EvaluatePolicy([]int{9}, 4, nil, memsys.PolicyConfig{CacheBlocks: 2}); err == nil {
		t.Fatal("out-of-range access accepted")
	}
	if _, err := memsys.EvaluatePolicy(nil, 4, nil, memsys.PolicyConfig{CacheBlocks: 2, Pinned: []int{9}}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

// TestTrainedPoliciesBeatSequentialOnGCC is the tracelab acceptance
// criterion: on the looping gcc trace with a cold cache sized below the
// working set, at least one trained policy (markov or hotset) beats the
// sequential baseline on demand hit ratio.
func TestTrainedPoliciesBeatSequentialOnGCC(t *testing.T) {
	const blockSize = 32
	gcc, ok := synth.ProfileByName("gcc")
	if !ok {
		t.Fatal("no gcc profile")
	}
	prog := synth.GenerateMIPS(gcc)
	trace := prog.Trace(1, 200000)

	// Collapse to block-change granularity, the request stream a refill
	// engine behind a one-line buffer issues.
	reqs := make([]int, 0, len(trace)/4)
	last := -1
	for _, a := range trace {
		b := int(a-synth.TextBase) / blockSize
		if b != last {
			reqs = append(reqs, b)
			last = b
		}
	}
	blocks := (len(prog.Text()) + blockSize - 1) / blockSize

	prof := traceprof.BuildProfile(reqs, blocks)
	ws := prof.UniqueBlocks()
	cache := ws / 3 // well below the working set: LRU alone must thrash

	// The looping trace: the same phase rotation replayed 3 times.
	looped := make([]int, 0, 3*len(reqs))
	for l := 0; l < 3; l++ {
		looped = append(looped, reqs...)
	}

	seq, err := policy.New("sequential", policy.Config{Blocks: blocks, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	markov, err := policy.New("markov", policy.Config{Blocks: blocks, Depth: 4, TopK: 4, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	hotset, err := policy.New("hotset", policy.Config{Blocks: blocks, Depth: 4, PinCount: cache / 2, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}

	cfg := memsys.PolicyConfig{CacheBlocks: cache}
	seqSt := mustEval(t, looped, blocks, seq, cfg)
	markovSt := mustEval(t, looped, blocks, markov, cfg)
	hotsetSt := mustEval(t, looped, blocks, hotset,
		memsys.PolicyConfig{CacheBlocks: cache, Pinned: hotset.(policy.Pinner).Pinned()})

	t.Logf("working set %d blocks, cache %d blocks, %d requests/loop", ws, cache, len(reqs))
	for _, r := range []struct {
		name string
		st   memsys.PolicyStats
	}{{"sequential", seqSt}, {"markov", markovSt}, {"hotset", hotsetSt}} {
		t.Logf("%-10s hit %.4f  accuracy %.4f  wasted %d  decompressions %d",
			r.name, r.st.HitRatio(), r.st.Accuracy(), r.st.PrefetchWasted, r.st.Decompressions)
	}

	base := seqSt.HitRatio()
	if markovSt.HitRatio() <= base && hotsetSt.HitRatio() <= base {
		t.Fatalf("no trained policy beat sequential: seq %.4f, markov %.4f, hotset %.4f",
			base, markovSt.HitRatio(), hotsetSt.HitRatio())
	}
	// The trained table also prefetches far more accurately, so the same
	// trace costs markedly fewer decompressions.
	if markovSt.Accuracy() <= seqSt.Accuracy() || markovSt.Decompressions >= seqSt.Decompressions {
		t.Fatalf("markov not cheaper than sequential: accuracy %.4f vs %.4f, decompressions %d vs %d",
			markovSt.Accuracy(), seqSt.Accuracy(), markovSt.Decompressions, seqSt.Decompressions)
	}
}
