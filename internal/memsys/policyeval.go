package memsys

import (
	"container/list"
	"fmt"

	"codecomp/internal/policy"
)

// This file is the offline policy-evaluation mode: where Simulate replays
// an instruction-fetch trace against the paper's I-cache + refill engine,
// EvaluatePolicy replays a block-access trace against a model of the
// serving stack's decompressed-block cache (internal/blockcache) under a
// chosen prefetch policy. The same trace scored against sequential, markov
// and hotset answers "which policy should this image serve with?" without
// standing up a server.

// PolicyConfig describes the modeled block cache.
type PolicyConfig struct {
	// CacheBlocks is the cache capacity in blocks (pinned blocks included).
	CacheBlocks int
	// Pinned blocks are preloaded and protected from eviction (a hotset
	// policy's pin set). Pins beyond CacheBlocks-1 are ignored so demand
	// traffic always has at least one evictable slot.
	Pinned []int
}

// PolicyStats scores one policy over one trace.
type PolicyStats struct {
	// Requests counts demand block accesses replayed.
	Requests uint64 `json:"requests"`
	// DemandHits and DemandMisses split Requests by cache outcome.
	DemandHits   uint64 `json:"demand_hits"`
	DemandMisses uint64 `json:"demand_misses"`
	// PrefetchIssued counts speculative block loads the policy triggered.
	PrefetchIssued uint64 `json:"prefetch_issued"`
	// PrefetchUsed counts prefetched blocks later served to a demand
	// access before eviction — the prefetches that paid off.
	PrefetchUsed uint64 `json:"prefetch_used"`
	// PrefetchWasted counts prefetched blocks evicted unused (or never
	// used by the end of the trace) — pure wasted decompression work.
	PrefetchWasted uint64 `json:"prefetch_wasted"`
	// Decompressions counts every block decompression, demand or
	// speculative, including preloading the pin set.
	Decompressions uint64 `json:"decompressions"`
	// Evictions counts blocks dropped for capacity.
	Evictions uint64 `json:"evictions"`
}

// HitRatio is the demand hit ratio — the headline score.
func (s PolicyStats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.Requests)
}

// Accuracy is the fraction of issued prefetches that were used.
func (s PolicyStats) Accuracy() float64 {
	if s.PrefetchIssued == 0 {
		return 0
	}
	return float64(s.PrefetchUsed) / float64(s.PrefetchIssued)
}

// evalEntry is one cached block in the model.
type evalEntry struct {
	block      int
	el         *list.Element // nil when pinned
	prefetched bool
}

// EvaluatePolicy replays a demand block-access trace through a
// fully-associative LRU cache of cfg.CacheBlocks blocks under prefetch
// policy pf (nil disables prefetching), mirroring the serving stack's
// semantics: a demand miss loads the block and then speculatively loads
// pf.Predict(block); pinned blocks are preloaded and never evicted.
// Accesses outside [0, numBlocks) are errors.
func EvaluatePolicy(accesses []int, numBlocks int, pf policy.Prefetcher, cfg PolicyConfig) (PolicyStats, error) {
	if numBlocks <= 0 {
		return PolicyStats{}, fmt.Errorf("memsys: numBlocks must be positive")
	}
	if cfg.CacheBlocks <= 0 {
		return PolicyStats{}, fmt.Errorf("memsys: CacheBlocks must be positive")
	}

	var st PolicyStats
	entries := make(map[int]*evalEntry, cfg.CacheBlocks)
	lru := list.New() // of *evalEntry; front = most recently used
	pinned := 0

	for _, b := range cfg.Pinned {
		if b < 0 || b >= numBlocks {
			return PolicyStats{}, fmt.Errorf("memsys: pinned block %d out of range [0,%d)", b, numBlocks)
		}
		if _, ok := entries[b]; ok || pinned >= cfg.CacheBlocks-1 {
			continue
		}
		entries[b] = &evalEntry{block: b}
		pinned++
		st.Decompressions++
	}

	insert := func(b int, prefetched bool) {
		e := &evalEntry{block: b, prefetched: prefetched}
		e.el = lru.PushFront(e)
		entries[b] = e
		for lru.Len()+pinned > cfg.CacheBlocks && lru.Len() > 0 {
			back := lru.Back()
			v := back.Value.(*evalEntry)
			lru.Remove(back)
			delete(entries, v.block)
			st.Evictions++
			if v.prefetched {
				st.PrefetchWasted++
			}
		}
	}

	for _, b := range accesses {
		if b < 0 || b >= numBlocks {
			return st, fmt.Errorf("memsys: access %d out of range [0,%d)", b, numBlocks)
		}
		st.Requests++
		if e, ok := entries[b]; ok {
			st.DemandHits++
			if e.el != nil {
				lru.MoveToFront(e.el)
			}
			if e.prefetched {
				e.prefetched = false
				st.PrefetchUsed++
			}
			continue
		}
		st.DemandMisses++
		st.Decompressions++
		insert(b, false)
		if pf == nil {
			continue
		}
		for _, p := range pf.Predict(b) {
			if p < 0 || p >= numBlocks {
				continue
			}
			if _, ok := entries[p]; ok {
				continue
			}
			st.PrefetchIssued++
			st.Decompressions++
			insert(p, true)
		}
	}
	// Prefetched blocks still unused at the end were wasted too.
	for _, e := range entries {
		if e.prefetched {
			st.PrefetchWasted++
		}
	}
	return st, nil
}
