package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codecomp/internal/samc"
	"codecomp/internal/synth"
)

func TestBuildLAT(t *testing.T) {
	lat := BuildLAT([]int{10, 20, 5})
	if lat.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", lat.NumBlocks())
	}
	lo, hi, err := lat.BlockRange(1)
	if err != nil || lo != 10 || hi != 30 {
		t.Fatalf("BlockRange(1) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := lat.BlockRange(3); err == nil {
		t.Fatal("out-of-range block must fail")
	}
	if lat.Bytes() != 12 {
		t.Fatalf("Bytes = %d", lat.Bytes())
	}
	if lat.CompactBytes() != 4+3 {
		t.Fatalf("CompactBytes = %d", lat.CompactBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	trace := []uint32{0}
	if _, err := Simulate(trace, 0, Config{CacheBytes: 100, LineBytes: 32, Assoc: 1}); err == nil {
		t.Fatal("non-divisible geometry must fail")
	}
	if _, err := Simulate(trace, 0, Config{}); err == nil {
		t.Fatal("zero geometry must fail")
	}
}

func TestPerfectLocality(t *testing.T) {
	// Repeated access to one block: 1 miss, rest hits.
	trace := make([]uint32, 1000)
	st, err := Simulate(trace, 0, Config{CacheBytes: 1024, Assoc: 1, LineBytes: 32, MemCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Accesses != 1000 {
		t.Fatalf("misses = %d, accesses = %d", st.Misses, st.Accesses)
	}
	if st.HitRatio() < 0.99 {
		t.Fatalf("hit ratio = %v", st.HitRatio())
	}
}

func TestThrashing(t *testing.T) {
	// Two blocks mapping to the same direct-mapped set alternate: all miss.
	cfg := Config{CacheBytes: 256, Assoc: 1, LineBytes: 32, MemCycles: 10}
	// 256/32 = 8 sets; blocks 0 and 8 collide.
	var trace []uint32
	for i := 0; i < 100; i++ {
		trace = append(trace, 0, 8*32)
	}
	st, err := Simulate(trace, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != uint64(len(trace)) {
		t.Fatalf("expected pure thrashing, misses = %d/%d", st.Misses, len(trace))
	}
	// 2-way associativity fixes it.
	cfg.Assoc = 2
	st, err = Simulate(trace, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 2 {
		t.Fatalf("2-way should miss twice, got %d", st.Misses)
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way set; A, B, A, C, A: B is evicted before A.
	cfg := Config{CacheBytes: 64, Assoc: 2, LineBytes: 32, MemCycles: 10}
	// One set of 2 lines: addresses 0, 32, 64 all map to set 0.
	trace := []uint32{0, 32, 0, 64, 0}
	st, err := Simulate(trace, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Misses: 0, 32, 64 → 3; final access to 0 hits because 32 was evicted.
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
}

func TestDecompressionLatencyCharged(t *testing.T) {
	trace := []uint32{0, 32, 64, 96}
	base := Config{CacheBytes: 1024, Assoc: 1, LineBytes: 32, MemCycles: 10}
	plain, err := Simulate(trace, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	comp := base
	comp.DecompCycles = func(int) int { return 70 }
	comp.LATCycles = 10
	withDecomp, err := Simulate(trace, 0, comp)
	if err != nil {
		t.Fatal(err)
	}
	// 4 misses × (70 decomp + 10 LAT, no CLB) = 320 extra cycles.
	if withDecomp.Cycles != plain.Cycles+320 {
		t.Fatalf("cycles: plain %d, compressed %d", plain.Cycles, withDecomp.Cycles)
	}
}

func TestCLBHidesLATAccess(t *testing.T) {
	// Re-missing the same block with a CLB: only the first miss pays LAT.
	cfg := Config{
		CacheBytes: 64, Assoc: 1, LineBytes: 32, MemCycles: 10,
		DecompCycles: func(int) int { return 50 },
		LATCycles:    20, CLBEntries: 16,
	}
	// Thrash two colliding blocks (64B direct = 2 sets, blocks 0 and 2 collide).
	var trace []uint32
	for i := 0; i < 50; i++ {
		trace = append(trace, 0, 2*32)
	}
	st, err := Simulate(trace, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 0 and 2 share LAT group 0, so a single CLB fill covers both.
	if st.CLBMisses != 1 {
		t.Fatalf("CLB misses = %d, want 1 (one LAT group covers both blocks)", st.CLBMisses)
	}
	if st.CLBLookups != st.Misses {
		t.Fatal("every compressed refill must consult the CLB")
	}
	// Blocks in different LAT groups need separate fills.
	var far []uint32
	for i := 0; i < 50; i++ {
		far = append(far, 0, uint32(LATGroup*32)) // groups 0 and 1
	}
	st2, err := Simulate(far, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CLBMisses != 2 {
		t.Fatalf("cross-group CLB misses = %d, want 2", st2.CLBMisses)
	}
}

func TestCompressedBandwidthBenefit(t *testing.T) {
	// Fetching compressed (smaller) blocks must cost fewer bus cycles.
	trace := []uint32{0, 32, 64, 96, 128, 160}
	slow := Config{CacheBytes: 1024, Assoc: 1, LineBytes: 32, MemCycles: 10, MemBytesPerCycle: 4}
	fast := slow
	fast.CompressedBytes = func(int) int { return 16 } // 2:1 compression
	a, err := Simulate(trace, 0, slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(trace, 0, fast)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles >= a.Cycles {
		t.Fatalf("compressed fetch %d cycles >= uncompressed %d", b.Cycles, a.Cycles)
	}
}

func TestEndToEndWithSAMC(t *testing.T) {
	// Full pipeline: synthetic program → SAMC image → trace-driven sim with
	// real per-block decompression latencies, verifying refilled content.
	prof := synth.Profile{Name: "t", KB: 16, FP: 0.1, Reuse: 0.4, SmallImm: 0.7, CallDensity: 0.05, Seed: 11}
	prog := synth.GenerateMIPS(prof)
	text := prog.Text()
	img, err := samc.Compress(text, samc.Options{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	trace := prog.Trace(1, 50000)

	verified := 0
	cfg := Config{
		CacheBytes: 2048, Assoc: 2, LineBytes: 32,
		MemCycles: 10, CLBEntries: 32, LATCycles: 10,
		DecompCycles: func(b int) int {
			if verified < 32 { // spot-check a few refills
				blk, err := img.Block(b)
				if err != nil {
					t.Errorf("refill of block %d failed: %v", b, err)
				} else {
					lo := b * 32
					if lo+len(blk) > len(text) || string(blk) != string(text[lo:lo+len(blk)]) {
						t.Errorf("refill of block %d returned wrong bytes", b)
					}
				}
				verified++
			}
			return 70
		},
		CompressedBytes: func(b int) int { return len(img.Blocks[b]) },
	}
	st, err := Simulate(trace, synth.TextBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.HitRatio() < 0.5 {
		t.Fatalf("hit ratio = %.3f: trace has no locality", st.HitRatio())
	}
	if st.CPF() < 1 {
		t.Fatalf("CPF = %v < 1", st.CPF())
	}
	// The paper's core performance claim: slowdown scales with miss ratio.
	plain := cfg
	plain.DecompCycles = nil
	plain.CompressedBytes = nil
	pst, err := Simulate(trace, synth.TextBase, plain)
	if err != nil {
		t.Fatal(err)
	}
	if st.CPF() <= pst.CPF() {
		t.Fatal("compressed system should be slower than uncompressed at equal cache size")
	}
	slowdown := st.CPF() / pst.CPF()
	if slowdown > 3 {
		t.Fatalf("slowdown %.2f implausibly high at %.1f%% hit ratio", slowdown, 100*st.HitRatio())
	}
}

// Property: with the set count held fixed, increasing associativity (LRU)
// never increases misses — the LRU inclusion property per set.
func TestQuickAssocMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint32, 2000)
		for i := range trace {
			trace[i] = uint32(rng.Intn(64)) * 32
		}
		const sets = 4
		prev := uint64(1 << 62)
		for _, assoc := range []int{1, 2, 4, 8} {
			st, err := Simulate(trace, 0, Config{
				CacheBytes: 32 * sets * assoc, Assoc: assoc, LineBytes: 32, MemCycles: 10,
			})
			if err != nil || st.Accesses != uint64(len(trace)) {
				return false
			}
			if st.Misses > prev {
				return false
			}
			prev = st.Misses
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit ratio rises (weakly) with cache size.
func TestQuickCacheSizeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint32, 3000)
		pc := uint32(0)
		for i := range trace {
			trace[i] = pc
			if rng.Intn(10) == 0 {
				pc = uint32(rng.Intn(256)) * 4
			} else {
				pc += 4
			}
		}
		prev := -1.0
		for _, kb := range []int{1, 2, 4, 8} {
			st, err := Simulate(trace, 0, Config{
				CacheBytes: kb * 1024, Assoc: 1, LineBytes: 32, MemCycles: 10,
			})
			if err != nil {
				return false
			}
			hr := st.HitRatio()
			if hr+1e-9 < prev {
				return false
			}
			prev = hr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := make([]uint32, 100000)
	pc := uint32(0)
	for i := range trace {
		trace[i] = pc
		if rng.Intn(12) == 0 {
			pc = uint32(rng.Intn(4096)) * 4
		} else {
			pc += 4
		}
	}
	cfg := Config{CacheBytes: 8192, Assoc: 2, LineBytes: 32, MemCycles: 10,
		DecompCycles: func(int) int { return 70 }, CLBEntries: 32, LATCycles: 10}
	b.SetBytes(int64(len(trace)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(trace, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
