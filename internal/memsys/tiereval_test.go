package memsys

import (
	"math"
	"testing"
)

func TestEvaluateTieringMechanics(t *testing.T) {
	costs := []float64{100, 10, 10, 10}
	// Cache of 2: access pattern 0,1,0,1 (all hits after the first touch),
	// then 2,3 evict 0,1, then 0 misses again.
	trace := []int{0, 1, 0, 1, 2, 3, 0}
	st, err := EvaluateTiering(trace, 4, TieringConfig{CacheBlocks: 2, BlockCostNs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 7 || st.Misses != 5 {
		t.Fatalf("stats %+v", st)
	}
	// Misses: 0 (100), 1 (10), 2 (10), 3 (10), 0 again (100) = 230.
	if st.TotalDecodeNs != 230 {
		t.Fatalf("total cost %v", st.TotalDecodeNs)
	}
	if math.Abs(st.MeanNsPerAccess-230.0/7) > 1e-9 || math.Abs(st.MeanNsPerMiss-46) > 1e-9 {
		t.Fatalf("means %+v", st)
	}
	if math.Abs(st.HitRatio-2.0/7) > 1e-9 {
		t.Fatalf("hit ratio %v", st.HitRatio)
	}

	// Error paths.
	if _, err := EvaluateTiering(trace, 4, TieringConfig{CacheBlocks: 0, BlockCostNs: costs}); err == nil {
		t.Fatal("zero cache accepted")
	}
	if _, err := EvaluateTiering(trace, 4, TieringConfig{CacheBlocks: 2, BlockCostNs: costs[:2]}); err == nil {
		t.Fatal("short cost vector accepted")
	}
	if _, err := EvaluateTiering([]int{9}, 4, TieringConfig{CacheBlocks: 2, BlockCostNs: costs}); err == nil {
		t.Fatal("out-of-range access accepted")
	}
}

// TestTieredLayoutBeatsUniformDense checks the evaluator shows what the
// tiering policy is for: with a skewed trace, cheap costs on the hot set
// beat a uniformly dense (expensive) layout on mean latency.
func TestTieredLayoutBeatsUniformDense(t *testing.T) {
	const blocks = 100
	trace := make([]int, 0, 10000)
	for i := 0; i < 10000; i++ {
		if i%10 != 0 {
			trace = append(trace, (i*7)%10) // 90% of accesses on blocks 0..9
		} else {
			trace = append(trace, 10+(i*13)%90)
		}
	}
	dense := make([]float64, blocks)
	tiered := make([]float64, blocks)
	for b := range dense {
		dense[b] = 57 * 128 // SAMC ns/byte × block
		tiered[b] = 57 * 128
		if b < 10 {
			tiered[b] = 0.05 * 128 // hot set promoted to raw
		}
	}
	// A tiny cache keeps both layouts missing constantly.
	cfg := TieringConfig{CacheBlocks: 4}
	cfg.BlockCostNs = dense
	dst, err := EvaluateTiering(trace, blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BlockCostNs = tiered
	tst, err := EvaluateTiering(trace, blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Misses != tst.Misses {
		t.Fatalf("layouts diverged on cache behavior: %d vs %d misses", dst.Misses, tst.Misses)
	}
	if tst.MeanNsPerAccess >= dst.MeanNsPerAccess/2 {
		t.Fatalf("tiered layout not faster: %v vs %v ns/access", tst.MeanNsPerAccess, dst.MeanNsPerAccess)
	}
}
