// Package memsys models the Wolfe/Chanin compressed-code memory system the
// paper builds on (§2, Figure 1): main memory holds compressed cache blocks
// plus a LAT (line address table) mapping program block addresses to
// compressed offsets; the instruction cache holds decompressed blocks and
// doubles as the decompression buffer; the cache refill engine decompresses
// a block on every miss, consulting a CLB (cache line address lookaside
// buffer, "essentially identical to a TLB") to avoid a LAT memory access.
//
// The simulator is trace driven: it replays instruction fetch addresses,
// models a set-associative LRU I-cache, and charges refill latencies that
// depend on the compressed block size and the decompressor model. The
// paper's statement that "the loss in performance should depend on the
// instruction cache hit ratio" is directly measurable here.
package memsys

import "fmt"

// LAT is the line address table: byte offsets of each compressed block in
// main memory.
type LAT struct {
	Offsets []uint32 // Offsets[i] is block i's start; one extra final entry
}

// BuildLAT lays compressed blocks out contiguously and records offsets.
func BuildLAT(blockSizes []int) LAT {
	lat := LAT{Offsets: make([]uint32, len(blockSizes)+1)}
	var off uint32
	for i, n := range blockSizes {
		lat.Offsets[i] = off
		off += uint32(n)
	}
	lat.Offsets[len(blockSizes)] = off
	return lat
}

// NumBlocks returns the block count.
func (l LAT) NumBlocks() int { return len(l.Offsets) - 1 }

// BlockRange returns the [start, end) byte range of compressed block i.
func (l LAT) BlockRange(i int) (uint32, uint32, error) {
	if i < 0 || i >= l.NumBlocks() {
		return 0, 0, fmt.Errorf("memsys: block %d out of range [0,%d)", i, l.NumBlocks())
	}
	return l.Offsets[i], l.Offsets[i+1], nil
}

// Bytes is the naive LAT storage: a 4-byte offset per block.
func (l LAT) Bytes() int { return 4 * l.NumBlocks() }

// CompactBytes is the Wolfe/Chanin compacted layout: one 4-byte base per
// group of 8 blocks plus a 1-byte compressed length per block (a block's
// compressed size always fits a byte for ≤128-byte lines).
func (l LAT) CompactBytes() int {
	n := l.NumBlocks()
	groups := (n + 7) / 8
	return 4*groups + n
}

// Config describes one simulated memory system.
type Config struct {
	// CacheBytes is the I-cache capacity.
	CacheBytes int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
	// LineBytes is the cache line = compression block size.
	LineBytes int
	// HitCycles is the cost of a cache hit (typically 1).
	HitCycles int
	// MemCycles is the base main-memory access latency for a refill.
	MemCycles int
	// MemBytesPerCycle is the memory bandwidth; fetching fewer (compressed)
	// bytes is one of compression's performance upsides.
	MemBytesPerCycle int
	// DecompCycles, if non-nil, returns the refill engine's decompression
	// latency for block i. Nil models uncompressed code (no LAT, no CLB).
	DecompCycles func(block int) int
	// CompressedBytes, if non-nil, returns block i's compressed size for
	// the bandwidth term. Nil means uncompressed line size.
	CompressedBytes func(block int) int
	// CLBEntries is the CLB capacity (fully associative, LRU). 0 disables
	// the CLB, forcing a LAT access on every miss. Each entry caches one
	// LAT group — the Wolfe/Chanin compacted layout packs LATGroup block
	// offsets per table line, so one fill serves nearby blocks too.
	CLBEntries int
	// LATCycles is the extra memory access cost on a CLB miss.
	LATCycles int
}

// LATGroup is the number of consecutive blocks one LAT line (and therefore
// one CLB entry) covers in the compacted Wolfe/Chanin layout.
const LATGroup = 8

func (c Config) validate() error {
	if c.CacheBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("memsys: cache geometry must be positive")
	}
	if c.CacheBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("memsys: cache %dB not divisible into %d-way sets of %dB lines",
			c.CacheBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Stats reports a simulation run.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	CLBLookups uint64
	CLBMisses  uint64
	Cycles     uint64
}

// HitRatio is the I-cache hit ratio.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// CPF is cycles per instruction fetch — the performance metric; compare
// compressed vs uncompressed configurations for the slowdown.
func (s Stats) CPF() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Accesses)
}

// lruSet is one cache set with LRU ordering (index 0 = most recent).
type lruSet struct {
	tags []int64
}

func (s *lruSet) access(tag int64) bool {
	for i, t := range s.tags {
		if t == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	return false
}

func (s *lruSet) fill(tag int64) {
	copy(s.tags[1:], s.tags[:len(s.tags)-1])
	s.tags[0] = tag
}

// Simulate replays a fetch-address trace. base is the address of block 0.
func Simulate(trace []uint32, base uint32, cfg Config) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	if cfg.HitCycles == 0 {
		cfg.HitCycles = 1
	}
	if cfg.MemBytesPerCycle == 0 {
		cfg.MemBytesPerCycle = 8
	}
	numSets := cfg.CacheBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([]lruSet, numSets)
	for i := range sets {
		sets[i].tags = make([]int64, cfg.Assoc)
		for j := range sets[i].tags {
			sets[i].tags[j] = -1
		}
	}
	clb := lruSet{}
	if cfg.CLBEntries > 0 {
		clb.tags = make([]int64, cfg.CLBEntries)
		for i := range clb.tags {
			clb.tags[i] = -1
		}
	}

	var st Stats
	for _, addr := range trace {
		st.Accesses++
		block := int64(addr-base) / int64(cfg.LineBytes)
		set := &sets[block%int64(numSets)]
		if set.access(block) {
			st.Cycles += uint64(cfg.HitCycles)
			continue
		}
		st.Misses++
		set.fill(block)
		cycles := cfg.HitCycles + cfg.MemCycles
		// Bandwidth term: bytes moved from memory.
		bytes := cfg.LineBytes
		if cfg.CompressedBytes != nil {
			bytes = cfg.CompressedBytes(int(block))
		}
		cycles += (bytes + cfg.MemBytesPerCycle - 1) / cfg.MemBytesPerCycle
		if cfg.DecompCycles != nil {
			cycles += cfg.DecompCycles(int(block))
			// Compressed code needs the LAT lookup; the CLB hides it.
			if cfg.CLBEntries > 0 {
				st.CLBLookups++
				group := block / LATGroup
				if !clb.access(group) {
					st.CLBMisses++
					clb.fill(group)
					cycles += cfg.LATCycles
				}
			} else {
				cycles += cfg.LATCycles
			}
		}
		st.Cycles += uint64(cycles)
	}
	return st, nil
}
