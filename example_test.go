package codecomp_test

// Executable godoc examples for the public API.

import (
	"fmt"

	"codecomp"
)

// Compress a program with SAMC and decompress a single cache block — the
// random-access operation the refill engine performs on an I-cache miss.
func Example() {
	prog := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv"))
	text := prog.Text()

	img, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		panic(err)
	}
	block, err := img.Block(3) // independent of every other block
	if err != nil {
		panic(err)
	}
	fmt.Println(len(block) == 32)
	// Output: true
}

// SADC learns a per-program dictionary; the jr r31 return idiom is the
// paper's flagship fusion example.
func ExampleCompressSADCMIPS() {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv")).Text()
	img, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		panic(err)
	}
	got, err := img.Decompress()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(got) == len(text), len(img.Dict) <= 256)
	// Output: true true
}

// Serialized images survive a marshal/unmarshal round trip — the bytes a
// firmware build would place in ROM.
func ExampleUnmarshalSAMC() {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv")).Text()
	img, _ := codecomp.CompressSAMC(text, codecomp.SAMCOptions{})
	restored, err := codecomp.UnmarshalSAMC(img.Marshal())
	if err != nil {
		panic(err)
	}
	fmt.Println(restored.NumBlocks() == img.NumBlocks())
	// Output: true
}

// The memory-system simulator replays an instruction fetch trace against
// the Wolfe/Chanin organization.
func ExampleSimulateMemory() {
	prog := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv"))
	trace := prog.Trace(1, 100000)
	stats, err := codecomp.SimulateMemory(trace, codecomp.TextBase, codecomp.MemConfig{
		CacheBytes: 4096, Assoc: 2, LineBytes: 32, MemCycles: 12,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(stats.Accesses == 100000, stats.HitRatio() > 0.9, stats.CPF() >= 1)
	// Output: true true true
}
