package codecomp_test

// Fuzz targets for every decoder-facing surface: hostile inputs must error,
// never panic or hang. `go test` runs the seed corpus; `go test -fuzz=X`
// explores further.

import (
	"bytes"
	"testing"

	"codecomp"
)

func seedImages(f *testing.F) (mips []byte) {
	f.Helper()
	p := codecomp.MustProfile("tomcatv") // smallest profile
	return codecomp.GenerateMIPS(p).Text()[:2048]
}

func FuzzLZWDecompress(f *testing.F) {
	text := seedImages(f)
	f.Add(codecomp.LZWCompress(text))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 8, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := codecomp.LZWDecompress(data)
		if err == nil && len(data) >= 4 {
			// On success the output length must match the header.
			want := int(uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]))
			if len(out) != want {
				t.Fatalf("decoded %d bytes, header says %d", len(out), want)
			}
		}
	})
}

func FuzzDeflateDecompress(f *testing.F) {
	text := seedImages(f)
	f.Add(codecomp.DeflateCompress(text))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 16, 0xAB, 0xCD})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = codecomp.DeflateDecompress(data) // must not panic
	})
}

func FuzzUnmarshalSAMC(f *testing.F) {
	text := seedImages(f)
	img, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img.Marshal())
	f.Add([]byte("SAMC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := codecomp.UnmarshalSAMC(data)
		if err != nil {
			return
		}
		_, _ = c.Decompress() // structurally valid → must not panic
	})
}

func FuzzUnmarshalSADC(f *testing.F) {
	text := seedImages(f)
	img, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img.Marshal())
	f.Add([]byte("SADC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := codecomp.UnmarshalSADC(data)
		if err != nil {
			return
		}
		_, _ = c.Decompress()
	})
}

func FuzzUnmarshalHuffman(f *testing.F) {
	text := seedImages(f)
	img, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := codecomp.UnmarshalHuffman(data)
		if err != nil {
			return
		}
		_, _ = c.Decompress()
	})
}

// FuzzSAMCRoundTrip drives the whole compressor with arbitrary word-aligned
// input: compression must always succeed and invert.
func FuzzSAMCRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		data = data[:len(data)&^3]
		img, err := codecomp.CompressSAMC(data, codecomp.SAMCOptions{})
		if err != nil {
			t.Fatalf("compress failed on valid input: %v", err)
		}
		got, err := img.Decompress()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzUnmarshalAny drives the registry's upload path: whatever magic a
// hostile upload claims, UnmarshalAny must either reject it or return an
// image whose blocks all decompress without panicking — a corrupted POST
// /images can never take down codecompd. Seeds include intact, truncated
// and bit-flipped marshals of every format.
func FuzzUnmarshalAny(f *testing.F) {
	text := seedImages(f)
	samcImg, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		f.Fatal(err)
	}
	sadcImg, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		f.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		f.Fatal(err)
	}
	ransImg, err := codecomp.CompressRANS(text, codecomp.RANSOptions{})
	if err != nil {
		f.Fatal(err)
	}
	tieredImg, err := codecomp.CompressTiered(text, codecomp.TierSpec{
		BlockSize:   128,
		Tiers:       []string{codecomp.TierRaw, codecomp.TierRANS},
		DefaultTier: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, img := range [][]byte{samcImg.Marshal(), sadcImg.Marshal(), huffImg.Marshal(), ransImg.Marshal(), tieredImg.Marshal()} {
		f.Add(img)
		f.Add(img[:len(img)/2]) // truncated
		f.Add(img[:16])         // header only
		flipped := append([]byte(nil), img...)
		flipped[len(flipped)/3] ^= 0x40 // bit-flipped payload
		f.Add(flipped)
		flipped2 := append([]byte(nil), img...)
		flipped2[6] ^= 0x01 // bit-flipped header
		f.Add(flipped2)
	}
	f.Add([]byte{})
	f.Add([]byte("SAMC"))
	f.Add([]byte("SADC\x01"))
	f.Add([]byte("KZHF\xff\xff\xff\xff"))
	f.Add([]byte("RANS\x01\x00\x00\x00\x00"))
	f.Add([]byte("TIER\x01\x00\x00\x00\x00\x00\x80"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := codecomp.UnmarshalAny(data)
		if err != nil {
			return
		}
		// Accepted images must serve every block without panicking, the
		// way the romserver does on demand.
		for i := 0; i < c.NumBlocks(); i++ {
			_, _ = c.Block(i)
		}
		_, _ = c.Decompress()
	})
}

// FuzzUnmarshalAnyBitFlip models a single-event upset in stored ROM: for
// every format, ANY single-bit flip anywhere in a marshaled image must be
// rejected by UnmarshalAny — cleanly, with an error. All five container
// formats carry a whole-payload CRC32 plus magic/version checks, so a
// flipped image that unmarshals successfully is a serializer integrity
// hole, not fuzz noise.
func FuzzUnmarshalAnyBitFlip(f *testing.F) {
	text := seedImages(f)
	samcImg, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		f.Fatal(err)
	}
	sadcImg, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		f.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		f.Fatal(err)
	}
	ransImg, err := codecomp.CompressRANS(text, codecomp.RANSOptions{})
	if err != nil {
		f.Fatal(err)
	}
	tieredImg, err := codecomp.CompressTiered(text, codecomp.TierSpec{
		BlockSize:   128,
		Tiers:       []string{codecomp.TierRaw, codecomp.TierRANS},
		DefaultTier: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	images := [][]byte{samcImg.Marshal(), sadcImg.Marshal(), huffImg.Marshal(), ransImg.Marshal(), tieredImg.Marshal()}
	for i := range images {
		// Seed bit positions across the header, the CRC field itself and
		// the payload of each format.
		for _, bit := range []uint64{0, 8 * 5, 8 * 9, 8 * 20, uint64(len(images[i]))*8 - 1} {
			f.Add(uint8(i), bit)
		}
	}
	f.Fuzz(func(t *testing.T, which uint8, bit uint64) {
		img := images[int(which)%len(images)]
		bit %= uint64(len(img)) * 8
		flipped := append([]byte(nil), img...)
		flipped[bit/8] ^= 1 << (bit % 8)
		c, err := codecomp.UnmarshalAny(flipped)
		if err == nil {
			t.Fatalf("image %d with bit %d flipped was accepted (%T) — integrity check hole",
				which, bit, c)
		}
	})
}
