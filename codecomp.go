// Package codecomp is a from-scratch reproduction of Lekatsas & Wolf,
// "Code Compression for Embedded Systems" (DAC 1998): cache-block
// addressable code compression for embedded CPUs that decompress on I-cache
// refill (the Wolfe/Chanin memory organization).
//
// Two compressors are provided:
//
//   - SAMC (Semiadaptive Markov Compression, §3): ISA-independent; divides
//     fixed-width instructions into bit streams, trains one binary Markov
//     tree per stream, and drives a 24-bit binary arithmetic coder, with
//     interval and model reset at every cache-block boundary.
//   - SADC (Semiadaptive Dictionary Compression, §4): ISA-dependent; splits
//     instructions into opcode/register/immediate streams, grows a
//     per-program dictionary of opcode groups and opcode+operand fusions,
//     and Huffman-codes all resulting streams.
//
// Alongside them come the paper's baselines (UNIX compress, a gzip-class
// LZ77+Huffman coder, and Kozuch & Wolfe byte-Huffman), the synthetic
// SPEC95 workload generator used by the evaluation, the compressed-memory
// simulator (I-cache + LAT + CLB), and decompressor hardware cost models.
//
// Quick start:
//
//	prog := codecomp.GenerateMIPS(codecomp.MustProfile("gcc"))
//	img, err := codecomp.CompressSAMC(prog.Text(), codecomp.SAMCOptions{Connected: true})
//	if err != nil { ... }
//	line, err := img.Block(7) // random-access decompression of one cache block
package codecomp

import (
	"fmt"

	"codecomp/internal/deflate"
	"codecomp/internal/dmc"
	"codecomp/internal/hw"
	"codecomp/internal/kozuch"
	"codecomp/internal/lzw"
	"codecomp/internal/markov"
	"codecomp/internal/memsys"
	"codecomp/internal/rans"
	"codecomp/internal/sadc"
	"codecomp/internal/samc"
	"codecomp/internal/streams"
	"codecomp/internal/synth"
	"codecomp/internal/tiering"
)

// BlockCodec is the interface every block-addressable compressed image
// satisfies: SAMC, SADC and byte-Huffman images all allow random-access
// decompression at cache-block granularity.
//
// All implementations are safe for concurrent reads: once an image has been
// built (by Compress* or Unmarshal*), Block, Decompress and the size
// accessors allocate their decoder state per call and never mutate the
// image, so any number of goroutines may decompress blocks simultaneously.
// This property is load-bearing for the serving layer (internal/romserver)
// and is enforced by TestConcurrentBlockReads under the race detector.
type BlockCodec interface {
	NumBlocks() int
	Block(i int) ([]byte, error)
	Decompress() ([]byte, error)
	CompressedSize() int
	Ratio() float64
}

// SAMC re-exports.
type (
	// SAMCOptions configures SAMC compression (block size, word size,
	// stream division, connected trees, probability quantization).
	SAMCOptions = samc.Options
	// SAMCImage is a SAMC-compressed program.
	SAMCImage = samc.Compressed
)

// CompressSAMC compresses text with SAMC.
func CompressSAMC(text []byte, opts SAMCOptions) (*SAMCImage, error) {
	return samc.Compress(text, opts)
}

// SADC re-exports.
type (
	// SADCOptions configures SADC compression.
	SADCOptions = sadc.Options
	// SADCImage is a SADC-compressed program.
	SADCImage = sadc.Compressed
)

// CompressSADCMIPS compresses a MIPS text image with SADC's 4-stream split.
func CompressSADCMIPS(text []byte, opts SADCOptions) (*SADCImage, error) {
	return sadc.Compress(text, sadc.MIPSAdapter{}, opts)
}

// CompressSADCX86 compresses an IA-32 text image with SADC's 3-stream split.
func CompressSADCX86(text []byte, opts SADCOptions) (*SADCImage, error) {
	return sadc.Compress(text, sadc.NewX86Adapter(), opts)
}

// HuffmanImage is a Kozuch & Wolfe byte-Huffman compressed program (the
// Figure 9 baseline).
type HuffmanImage = kozuch.Compressed

// CompressHuffman compresses text with per-program byte Huffman coding at
// the given block size (0 → 32).
func CompressHuffman(text []byte, blockSize int) (*HuffmanImage, error) {
	return kozuch.Compress(text, blockSize)
}

// rANS re-exports.
type (
	// RANSOptions configures interleaved-rANS compression (block size,
	// interleaving factor).
	RANSOptions = rans.Options
	// RANSImage is an interleaved-rANS compressed program.
	RANSImage = rans.Compressed
)

// CompressRANS compresses text with the block-addressable interleaved rANS
// codec (the nibble-parallel decoder analogue; see internal/rans).
func CompressRANS(text []byte, opts RANSOptions) (*RANSImage, error) {
	return rans.Compress(text, opts)
}

// Heat-tiered re-exports: a tiered image keeps one model per codec tier and
// stores every block in exactly one tier, so hot blocks can be served from
// a fast format while cold blocks stay dense (see internal/tiering).
type (
	// TierSpec configures a tiered compression: block geometry plus the
	// ordered tier list (fastest decode first, densest last) and the
	// initial per-block assignment.
	TierSpec = tiering.Spec
	// TieredImage is a mixed-codec compressed program whose blocks can be
	// migrated between tiers in place (encode-verify-swap).
	TieredImage = tiering.Compressed
	// TierPolicy maps traceprof heat profiles to desired per-block tiers.
	TierPolicy = tiering.Policy
	// TierCount summarizes one tier's block population and footprint.
	TierCount = tiering.TierCount
	// TierCostModel gives per-format decode cost in ns/byte for the
	// offline ratio-vs-latency evaluator.
	TierCostModel = tiering.CostModel
)

// Tier format names accepted in TierSpec.Tiers, fastest to densest.
const (
	TierRaw     = tiering.TierRaw
	TierHuffman = tiering.TierHuffman
	TierRANS    = tiering.TierRANS
	TierSAMC    = tiering.TierSAMC
)

// DefaultTierCostModel carries the committed benchmark decode throughputs
// as ns/byte; see tiering.DefaultCostModel.
var DefaultTierCostModel = tiering.DefaultCostModel

// CompressTiered compresses text into a mixed-codec tiered image.
func CompressTiered(text []byte, spec TierSpec) (*TieredImage, error) {
	return tiering.Compress(text, spec)
}

// LZW (UNIX compress) file-level baseline.
func LZWCompress(data []byte) []byte            { return lzw.Compress(data) }
func LZWDecompress(data []byte) ([]byte, error) { return lzw.Decompress(data) }
func LZWRatio(data []byte) float64              { return lzw.Ratio(data) }

// Deflate (gzip-class) file-level baseline.
func DeflateCompress(data []byte) []byte            { return deflate.Compress(data) }
func DeflateDecompress(data []byte) ([]byte, error) { return deflate.Decompress(data) }
func DeflateRatio(data []byte) float64              { return deflate.Ratio(data) }

// DMC (Cormack & Horspool dynamic Markov coding — the paper's reference
// [3]) is included as the adaptive-modelling reference point: it compresses
// whole files best of all methods here, but needs megabytes of working
// memory and collapses when restarted at every cache block (§3's argument
// for a semiadaptive model).
type (
	// DMCOptions configures the adaptive model (node budget, cloning).
	DMCOptions = dmc.Options
	// DMCCompressed is a whole-file adaptive compression result.
	DMCCompressed = dmc.Compressed
	// DMCBlocks is the per-cache-block variant the paper rules out.
	DMCBlocks = dmc.BlockCompressed
)

// DMCCompress compresses data as one adaptive stream.
func DMCCompress(data []byte, opts DMCOptions) *DMCCompressed {
	return dmc.Compress(data, opts)
}

// DMCDecompress reverses DMCCompress (same options required).
func DMCDecompress(c *DMCCompressed, opts DMCOptions) ([]byte, error) {
	return dmc.Decompress(c, opts)
}

// DMCCompressBlocks restarts the adaptive model at every block boundary.
func DMCCompressBlocks(data []byte, blockSize int, opts DMCOptions) *DMCBlocks {
	return dmc.CompressBlocks(data, blockSize, opts)
}

// Workload generation re-exports.
type (
	// Profile parametrizes one synthetic SPEC95 stand-in benchmark.
	Profile = synth.Profile
	// MIPSProgram is a generated MIPS program with structural metadata.
	MIPSProgram = synth.MIPSProgram
	// X86Program is a generated IA-32 program.
	X86Program = synth.X86Program
)

// SPEC95 returns the 18-benchmark suite of the paper's figures.
func SPEC95() []Profile { return synth.SPEC95 }

// MustProfile returns a suite profile by name, panicking if unknown.
func MustProfile(name string) Profile {
	p, ok := synth.ProfileByName(name)
	if !ok {
		panic(fmt.Sprintf("codecomp: unknown benchmark %q", name))
	}
	return p
}

// GenerateMIPS builds the synthetic MIPS program for a profile.
func GenerateMIPS(p Profile) *MIPSProgram { return synth.GenerateMIPS(p) }

// GenerateX86 builds the synthetic IA-32 program for a profile.
func GenerateX86(p Profile) *X86Program { return synth.GenerateX86(p) }

// TextBase is the virtual address of generated programs' first instruction.
const TextBase = synth.TextBase

// Stream-division machinery re-exports (§3's subdivision search).
type (
	// Division is a partition of instruction bits into streams.
	Division = streams.Division
	// OptimizeOptions configures the stream-assignment search.
	OptimizeOptions = streams.Options
	// OptimizeResult reports the search outcome.
	OptimizeResult = streams.Result
)

// OptimizeDivision runs the greedy + hill-climbing stream assignment search
// over instruction words.
func OptimizeDivision(words []uint64, width, n int, opts OptimizeOptions) OptimizeResult {
	return streams.Optimize(words, width, n, opts)
}

// BitCorrelation computes the |correlation| matrix between instruction bit
// positions (the paper's ρ_ij).
func BitCorrelation(words []uint64, width int) [][]float64 {
	return streams.Correlation(words, width)
}

// Memory-system simulation re-exports (§2's organization).
type (
	// MemConfig describes a simulated I-cache + refill engine.
	MemConfig = memsys.Config
	// MemStats reports a simulation run.
	MemStats = memsys.Stats
	// LAT is the line address table.
	LAT = memsys.LAT
)

// SimulateMemory replays a fetch trace against a memory-system config.
func SimulateMemory(trace []uint32, base uint32, cfg MemConfig) (MemStats, error) {
	return memsys.Simulate(trace, base, cfg)
}

// BuildLAT lays out compressed blocks and returns their address table.
func BuildLAT(blockSizes []int) LAT { return memsys.BuildLAT(blockSizes) }

// Hardware model re-exports (§3 Figure 5, §4 Figure 6).
type (
	// SAMCDecoder models the arithmetic decompression engine.
	SAMCDecoder = hw.SAMCDecoder
	// SADCDecoder models the dictionary decompression engine.
	SADCDecoder = hw.SADCDecoder
	// HWCost is a rough gate budget.
	HWCost = hw.Cost
	// MarkovModel is a frozen SAMC model (exposed for hardware costing).
	MarkovModel = markov.Model
)

// NewSAMCSerialDecoder returns the bit-serial engine of the §3 pseudocode.
func NewSAMCSerialDecoder() SAMCDecoder { return hw.NewSAMCSerial() }

// NewSAMCNibbleDecoder returns the paper's 4-bit parallel engine.
func NewSAMCNibbleDecoder() SAMCDecoder { return hw.NewSAMCNibble() }

// NewSADCTableDecoder returns the parallel table-decoder engine.
func NewSADCTableDecoder() SADCDecoder { return hw.NewSADCTable() }

// Image (de)serialization: each block-addressable format marshals to a ROM
// layout whose per-block offset table doubles as the LAT.

// UnmarshalSAMC reconstructs a SAMC image from its Marshal output.
func UnmarshalSAMC(data []byte) (*SAMCImage, error) { return samc.Unmarshal(data) }

// UnmarshalSADC reconstructs a SADC image (either ISA) from its Marshal
// output.
func UnmarshalSADC(data []byte) (*SADCImage, error) { return sadc.Unmarshal(data) }

// UnmarshalHuffman reconstructs a byte-Huffman image from its Marshal
// output.
func UnmarshalHuffman(data []byte) (*HuffmanImage, error) { return kozuch.Unmarshal(data) }

// UnmarshalRANS reconstructs an interleaved-rANS image from its Marshal
// output.
func UnmarshalRANS(data []byte) (*RANSImage, error) { return rans.Unmarshal(data) }

// UnmarshalTiered reconstructs a mixed-codec tiered image from its Marshal
// output.
func UnmarshalTiered(data []byte) (*TieredImage, error) { return tiering.Unmarshal(data) }

// Serialized-image format names, as reported by DetectFormat.
const (
	FormatSAMC    = "samc"
	FormatSADC    = "sadc"
	FormatHuffman = "huffman"
	FormatRANS    = "rans"
	FormatTiered  = "tiered"
)

// DetectFormat inspects a serialized image's magic and returns its format
// name (FormatSAMC, FormatSADC, FormatHuffman, FormatRANS or FormatTiered),
// or "" if the data does not begin with a known magic. It never inspects
// more than the first 4 bytes.
func DetectFormat(data []byte) string {
	if len(data) < 4 {
		return ""
	}
	switch string(data[:4]) {
	case "SAMC":
		return FormatSAMC
	case "SADC":
		return FormatSADC
	case "KZHF":
		return FormatHuffman
	case "RANS":
		return FormatRANS
	case "TIER":
		return FormatTiered
	}
	return ""
}

// UnmarshalAny reconstructs a block-addressable image of any format,
// auto-detecting SAMC, SADC, byte-Huffman, rANS and tiered ROM images by
// their magic.
// It is the programmatic form of `codecomp -decompress` and the entry point
// the romserver registry uses for uploaded images. Raw LZW/deflate
// containers carry no magic and are not block-addressable, so they are
// rejected here.
func UnmarshalAny(data []byte) (BlockCodec, error) {
	switch DetectFormat(data) {
	case FormatSAMC:
		return samc.Unmarshal(data)
	case FormatSADC:
		return sadc.Unmarshal(data)
	case FormatHuffman:
		return kozuch.Unmarshal(data)
	case FormatRANS:
		return rans.Unmarshal(data)
	case FormatTiered:
		return tiering.Unmarshal(data)
	}
	return nil, fmt.Errorf("codecomp: unrecognized image format (no SAMC/SADC/KZHF/RANS/TIER magic)")
}

// BlockAppender is the optional fast-path extension of BlockCodec: decode
// block i into a caller-supplied buffer instead of a fresh one. All built-in
// images implement it with zero transient heap allocations in steady state
// (pooled or stack decoder scratch), which the serving layer's cache-miss
// path relies on. AppendBlock(dst, i) appends exactly the bytes Block(i)
// would return and leaves dst's prefix untouched; on error the destination
// contents are unspecified and the returned slice is nil.
type BlockAppender interface {
	AppendBlock(dst []byte, i int) ([]byte, error)
}

// AppendBlock decodes block i of any BlockCodec into dst: directly when the
// codec implements BlockAppender, otherwise via Block plus a copy.
func AppendBlock(c BlockCodec, dst []byte, i int) ([]byte, error) {
	if a, ok := c.(BlockAppender); ok {
		return a.AppendBlock(dst, i)
	}
	b, err := c.Block(i)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// BlockPrefixAppender is the optional sub-block extension of BlockCodec:
// decode only the first n bytes of block i. The paper's block-addressable
// formats encode each block as a self-terminating symbol stream, so a
// decoder that only needs a prefix can stop at the symbol covering the
// requested offset instead of decoding the whole block — the
// decompression-free tail the zero-copy read path exploits for sub-block
// reads. AppendBlockPrefix(dst, i, n) appends exactly
// min(n, len(Block(i))) bytes, bit-identical to the same-length prefix of
// Block(i), and leaves dst's prefix untouched; n <= 0 appends nothing.
// SAMC stops at the word containing the offset, byte-Huffman at the
// symbol, and SADC at the dictionary token (truncating its final unit),
// so the decode work each performs is proportional to the requested
// prefix, not the block size.
type BlockPrefixAppender interface {
	AppendBlockPrefix(dst []byte, i, n int) ([]byte, error)
}

// AppendBlockPrefix decodes the first n bytes of block i of any
// BlockCodec into dst. decoded reports how many bytes the codec actually
// had to decode to satisfy the request: the appended length when the
// codec supports native prefix decode, or the full block length when the
// call fell back to a full decode plus truncation (rANS interleaves its
// streams across the whole block and always pays the full decode). The
// serving layer's partial-read accounting is built on this value.
func AppendBlockPrefix(c BlockCodec, dst []byte, i, n int) (out []byte, decoded int, err error) {
	if n <= 0 {
		return dst, 0, nil
	}
	if a, ok := c.(BlockPrefixAppender); ok {
		out, err = a.AppendBlockPrefix(dst, i, n)
		if err != nil {
			return nil, 0, err
		}
		return out, len(out) - len(dst), nil
	}
	base := len(dst)
	out, err = AppendBlock(c, dst, i)
	if err != nil {
		return nil, 0, err
	}
	decoded = len(out) - base
	if base+n < len(out) {
		out = out[:base+n]
	}
	return out, decoded, nil
}

// Interface conformance checks.
var (
	_ BlockCodec = (*SAMCImage)(nil)
	_ BlockCodec = (*SADCImage)(nil)
	_ BlockCodec = (*HuffmanImage)(nil)
	_ BlockCodec = (*RANSImage)(nil)
	_ BlockCodec = (*TieredImage)(nil)

	_ BlockAppender = (*SAMCImage)(nil)
	_ BlockAppender = (*SADCImage)(nil)
	_ BlockAppender = (*HuffmanImage)(nil)
	_ BlockAppender = (*RANSImage)(nil)
	// TieredImage deliberately does not implement BlockPrefixAppender: a
	// block's tier (and thus prefix-decode support) can change under a
	// migration, so partial reads fall back to the honest full-decode
	// accounting in AppendBlockPrefix.
	_ BlockAppender = (*TieredImage)(nil)

	_ BlockPrefixAppender = (*SAMCImage)(nil)
	_ BlockPrefixAppender = (*SADCImage)(nil)
	_ BlockPrefixAppender = (*HuffmanImage)(nil)
)
