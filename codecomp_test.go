package codecomp_test

import (
	"bytes"
	"testing"

	"codecomp"
)

// TestPublicAPIRoundTrips exercises every codec through the public façade
// and the BlockCodec interface.
func TestPublicAPIRoundTrips(t *testing.T) {
	mips := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	x86 := codecomp.GenerateX86(codecomp.MustProfile("compress")).Text()

	samcImg, err := codecomp.CompressSAMC(mips, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	sadcImg, err := codecomp.CompressSADCMIPS(mips, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sadcX86, err := codecomp.CompressSADCX86(x86, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(mips, 32)
	if err != nil {
		t.Fatal(err)
	}

	codecs := []struct {
		name  string
		codec codecomp.BlockCodec
		want  []byte
	}{
		{"SAMC", samcImg, mips},
		{"SADC/MIPS", sadcImg, mips},
		{"SADC/x86", sadcX86, x86},
		{"Huffman", huffImg, mips},
	}
	for _, c := range codecs {
		got, err := c.codec.Decompress()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Fatalf("%s: round trip failed", c.name)
		}
		if r := c.codec.Ratio(); r <= 0 || r >= 1 {
			t.Fatalf("%s: ratio %v", c.name, r)
		}
		if c.codec.NumBlocks() <= 0 || c.codec.CompressedSize() <= 0 {
			t.Fatalf("%s: degenerate image", c.name)
		}
		if _, err := c.codec.Block(0); err != nil {
			t.Fatalf("%s: Block(0): %v", c.name, err)
		}
	}
}

func TestFileBaselines(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	lz, err := codecomp.LZWDecompress(codecomp.LZWCompress(text))
	if err != nil || !bytes.Equal(lz, text) {
		t.Fatal("LZW round trip failed")
	}
	df, err := codecomp.DeflateDecompress(codecomp.DeflateCompress(text))
	if err != nil || !bytes.Equal(df, text) {
		t.Fatal("deflate round trip failed")
	}
	if codecomp.DeflateRatio(text) >= codecomp.LZWRatio(text) {
		t.Fatal("gzip-class should beat LZW on code")
	}
}

func TestSuiteAndProfiles(t *testing.T) {
	if len(codecomp.SPEC95()) != 18 {
		t.Fatal("SPEC95 suite should have 18 benchmarks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustProfile must panic on unknown names")
		}
	}()
	codecomp.MustProfile("nonesuch")
}

func TestMemorySimulationAPI(t *testing.T) {
	prog := codecomp.GenerateMIPS(codecomp.MustProfile("compress"))
	trace := prog.Trace(1, 50000)
	st, err := codecomp.SimulateMemory(trace, codecomp.TextBase, codecomp.MemConfig{
		CacheBytes: 4096, Assoc: 2, LineBytes: 32, MemCycles: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 50000 || st.HitRatio() <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	lat := codecomp.BuildLAT([]int{10, 12, 9})
	if lat.NumBlocks() != 3 {
		t.Fatal("LAT API broken")
	}
}

func TestHardwareAPI(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	img, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nib := codecomp.NewSAMCNibbleDecoder()
	if nib.CyclesPerBlock(32) <= 0 {
		t.Fatal("decoder latency must be positive")
	}
	if nib.Cost(img.Model).GateEq <= 0 {
		t.Fatal("gate estimate must be positive")
	}
	if codecomp.NewSADCTableDecoder().CyclesPerBlock(32, 8, 100) <= 0 {
		t.Fatal("SADC decoder latency must be positive")
	}
	if codecomp.NewSAMCSerialDecoder().CyclesPerBlock(32) <= nib.CyclesPerBlock(32) {
		t.Fatal("serial decoder should be slower than nibble decoder")
	}
}

func TestDivisionAPI(t *testing.T) {
	prog := codecomp.GenerateMIPS(codecomp.MustProfile("compress"))
	words := prog.Words()
	corr := codecomp.BitCorrelation(words, 32)
	if len(corr) != 32 {
		t.Fatal("correlation matrix shape")
	}
	res := codecomp.OptimizeDivision(words, 32, 4, codecomp.OptimizeOptions{Seed: 1, Iterations: 10})
	if err := res.Division.Validate(); err != nil {
		t.Fatal(err)
	}
	img, err := codecomp.CompressSAMC(prog.Text(), codecomp.SAMCOptions{Division: res.Division})
	if err != nil {
		t.Fatal(err)
	}
	got, err := img.Decompress()
	if err != nil || !bytes.Equal(got, prog.Text()) {
		t.Fatal("optimized-division round trip failed")
	}
}

func TestImageSerializationAPI(t *testing.T) {
	mips := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	x86 := codecomp.GenerateX86(codecomp.MustProfile("compress")).Text()

	sa, err := codecomp.CompressSAMC(mips, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	sa2, err := codecomp.UnmarshalSAMC(sa.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sa2.Decompress(); !bytes.Equal(got, mips) {
		t.Fatal("SAMC image round trip failed")
	}

	sd, err := codecomp.CompressSADCX86(x86, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sd2, err := codecomp.UnmarshalSADC(sd.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sd2.Decompress(); !bytes.Equal(got, x86) {
		t.Fatal("SADC image round trip failed")
	}

	hf, err := codecomp.CompressHuffman(mips, 32)
	if err != nil {
		t.Fatal(err)
	}
	hf2, err := codecomp.UnmarshalHuffman(hf.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := hf2.Decompress(); !bytes.Equal(got, mips) {
		t.Fatal("Huffman image round trip failed")
	}

	// Cross-format confusion must fail cleanly.
	if _, err := codecomp.UnmarshalSAMC(sd.Marshal()); err == nil {
		t.Fatal("SADC image accepted by SAMC unmarshal")
	}
	if _, err := codecomp.UnmarshalSADC(hf.Marshal()); err == nil {
		t.Fatal("Huffman image accepted by SADC unmarshal")
	}
}

func TestParallelDecoderAPI(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	img, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := img.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := img.BlockParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("parallel decode differs from serial")
	}
	if st.Nibbles <= 0 {
		t.Fatal("no nibble stats")
	}
	dec := codecomp.NewSAMCNibbleDecoder()
	if c := dec.CyclesMeasured(st.Nibbles, st.Interrupts); c <= 0 {
		t.Fatal("measured cycles must be positive")
	}
}

func TestDMCAPI(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	c := codecomp.DMCCompress(text, codecomp.DMCOptions{})
	got, err := codecomp.DMCDecompress(c, codecomp.DMCOptions{})
	if err != nil || !bytes.Equal(got, text) {
		t.Fatal("DMC round trip failed")
	}
	blocks := codecomp.DMCCompressBlocks(text, 32, codecomp.DMCOptions{})
	// The paper's §3 argument, visible through the public API: the adaptive
	// coder collapses at block granularity.
	if blocks.Ratio() < c.Ratio()+0.2 {
		t.Fatalf("block DMC %.3f vs file %.3f: no adaptation penalty", blocks.Ratio(), c.Ratio())
	}
}

func TestDecompressParallelAPI(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("compress")).Text()
	sa, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sa.DecompressParallel(4)
	if err != nil || !bytes.Equal(got, text) {
		t.Fatal("SAMC parallel decompress failed")
	}
	sd, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = sd.DecompressParallel(4)
	if err != nil || !bytes.Equal(got, text) {
		t.Fatal("SADC parallel decompress failed")
	}
}

// TestUnmarshalAny covers the magic-based auto-detection shared by the
// codecomp CLI and the romserver registry: every block-addressable format
// (including the mixed-codec tiered container) plus garbage input.
func TestUnmarshalAny(t *testing.T) {
	text := codecomp.GenerateMIPS(codecomp.MustProfile("tomcatv")).Text()
	samcImg, err := codecomp.CompressSAMC(text, codecomp.SAMCOptions{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	sadcImg, err := codecomp.CompressSADCMIPS(text, codecomp.SADCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	huffImg, err := codecomp.CompressHuffman(text, 32)
	if err != nil {
		t.Fatal(err)
	}
	tieredImg, err := codecomp.CompressTiered(text, codecomp.TierSpec{
		BlockSize:   128,
		Tiers:       []string{codecomp.TierRaw, codecomp.TierHuffman, codecomp.TierRANS},
		DefaultTier: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		data    []byte
		format  string
		wantErr bool
	}{
		{"samc", samcImg.Marshal(), codecomp.FormatSAMC, false},
		{"sadc", sadcImg.Marshal(), codecomp.FormatSADC, false},
		{"huffman", huffImg.Marshal(), codecomp.FormatHuffman, false},
		{"tiered", tieredImg.Marshal(), codecomp.FormatTiered, false},
		{"tiered-magic-only", []byte("TIER"), codecomp.FormatTiered, true},
		{"empty", nil, "", true},
		{"short", []byte("SA"), "", true},
		{"garbage", []byte("this is not a compressed image"), "", true},
		{"lzw-container", codecomp.LZWCompress(text), "", true},
		{"magic-only", []byte("SAMC"), codecomp.FormatSAMC, true},
		{"truncated", samcImg.Marshal()[:40], codecomp.FormatSAMC, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := codecomp.DetectFormat(tc.data); got != tc.format {
				t.Fatalf("DetectFormat = %q, want %q", got, tc.format)
			}
			c, err := codecomp.UnmarshalAny(tc.data)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("UnmarshalAny accepted %s", tc.name)
				}
				return
			}
			if err != nil {
				t.Fatalf("UnmarshalAny: %v", err)
			}
			got, err := c.Decompress()
			if err != nil || !bytes.Equal(got, text) {
				t.Fatalf("round trip through UnmarshalAny failed: %v", err)
			}
		})
	}
}
